//! The [`Recorder`] trait, its no-op and collecting implementations, and
//! RAII span guards.
//!
//! Algorithms are generic over `R: Recorder + ?Sized`; the benchmark
//! harness passes a [`MetricsRecorder`] (through `&dyn Recorder`), while
//! the plain query entry points pass [`NoopRecorder`]. Because
//! `NoopRecorder::enabled()` is a monomorphised `false`, every guard,
//! timestamp and accumulation folds away on the untraced hot path — no
//! clock reads, no allocation, no branch left behind.
//!
//! Span discipline: guards must nest like scopes (RAII guarantees this
//! when spans are bound to `let _guard`). Sibling spans with the same
//! name aggregate; the result is a *merged phase tree* per recorder, not
//! one record per dynamic span.

use crate::span::{PhaseStat, SpanNode, SpanTree};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// Sink for hierarchical phase timings and named counters.
///
/// All methods take `&self`: implementations use interior mutability so
/// RAII guards can coexist with the `&mut QueryStats` threading used for
/// machine-independent counters.
pub trait Recorder {
    /// Whether this recorder collects anything. Instrumentation sites
    /// branch on this before reading clocks, so a `false` here (inlined
    /// for concrete types) makes tracing free.
    fn enabled(&self) -> bool;

    /// Opens a child span of the current span. Balanced by
    /// [`Recorder::span_exit`]; use [`span`] / [`span!`] rather than
    /// calling this directly.
    fn span_enter(&self, name: &'static str);

    /// Closes the innermost span, attributing `elapsed_ns` to it.
    fn span_exit(&self, elapsed_ns: u64);

    /// Accumulates `ns` into a leaf phase named `name` under the current
    /// span, without the enter/exit pair — the cheap primitive for hot
    /// leaves (e.g. per-pair refinement) on traced runs.
    fn add_ns(&self, name: &'static str, ns: u64);

    /// Adds `n` to the named free-form counter.
    fn add_count(&self, name: &'static str, n: u64);

    /// The per-worker handoff for intra-query parallelism: a view of this
    /// recorder that is safe to share across worker threads, or `None`
    /// when the implementation is single-threaded.
    ///
    /// Parallel engines receive `&dyn Recorder` through the `*_traced`
    /// query traits and cannot move it into a `std::thread::scope`; a
    /// recorder that *is* thread-safe (the shard-per-thread
    /// [`crate::SharedRecorder`], or the free [`NoopRecorder`]) returns
    /// `Some(self)` here so every worker can record into it directly.
    /// Single-threaded sinks ([`MetricsRecorder`]) return `None`, telling
    /// the engine to fall back to a sequential traced pass — results are
    /// unaffected either way.
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        None
    }
}

/// Forwarding impl so generic instrumentation sites accept `&R` and
/// `&dyn Recorder` alike.
impl<T: Recorder + ?Sized> Recorder for &T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn span_enter(&self, name: &'static str) {
        (**self).span_enter(name)
    }
    #[inline]
    fn span_exit(&self, elapsed_ns: u64) {
        (**self).span_exit(elapsed_ns)
    }
    #[inline]
    fn add_ns(&self, name: &'static str, ns: u64) {
        (**self).add_ns(name, ns)
    }
    #[inline]
    fn add_count(&self, name: &'static str, n: u64) {
        (**self).add_count(name, n)
    }
    #[inline]
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        (**self).as_sync()
    }
}

/// The do-nothing recorder used by untraced query paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn span_enter(&self, _name: &'static str) {}
    #[inline(always)]
    fn span_exit(&self, _elapsed_ns: u64) {}
    #[inline(always)]
    fn add_ns(&self, _name: &'static str, _ns: u64) {}
    #[inline(always)]
    fn add_count(&self, _name: &'static str, _n: u64) {}
    #[inline(always)]
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        Some(self)
    }
}

/// RAII guard produced by [`span`]: times its own scope and reports to
/// the recorder on drop. Holds no timestamp (and reads no clock) when the
/// recorder is disabled.
#[must_use = "a span guard times the scope it is bound to; bind it to a variable"]
pub struct SpanGuard<'a, R: Recorder + ?Sized> {
    rec: &'a R,
    start: Option<Instant>,
}

impl<R: Recorder + ?Sized> Drop for SpanGuard<'_, R> {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.rec.span_exit(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a named span on `rec`, returning the guard that closes it.
#[inline]
pub fn span<'a, R: Recorder + ?Sized>(rec: &'a R, name: &'static str) -> SpanGuard<'a, R> {
    if rec.enabled() {
        rec.span_enter(name);
        SpanGuard {
            rec,
            start: Some(Instant::now()),
        }
    } else {
        SpanGuard { rec, start: None }
    }
}

/// Opens a span bound to the enclosing scope:
/// `let _g = span!(rec, "gir/refine");`
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $crate::span($rec, $name)
    };
}

/// Times `ns` spent in closure `f` into leaf phase `name` when the
/// recorder is enabled; calls `f` untimed otherwise.
#[inline]
pub fn timed_leaf<R: Recorder + ?Sized, T>(
    rec: &R,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    if rec.enabled() {
        let start = Instant::now();
        let out = f();
        rec.add_ns(name, start.elapsed().as_nanos() as u64);
        out
    } else {
        f()
    }
}

#[derive(Debug)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    total_ns: u64,
    calls: u64,
}

/// The span-tree arena shared by [`MetricsRecorder`] and the per-thread
/// shards of [`crate::SharedRecorder`]: a merged tree of named spans plus
/// the stack of currently open ones.
#[derive(Debug)]
pub(crate) struct SpanArena {
    /// Arena of span nodes; index 0 is the synthetic root.
    nodes: Vec<Node>,
    /// Stack of open spans (indices into `nodes`); never empty.
    stack: Vec<usize>,
}

impl Default for SpanArena {
    fn default() -> Self {
        Self {
            nodes: vec![Node {
                name: "",
                children: Vec::new(),
                total_ns: 0,
                calls: 0,
            }],
            stack: vec![0],
        }
    }
}

impl SpanArena {
    fn child_of(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            children: Vec::new(),
            total_ns: 0,
            calls: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    pub(crate) fn enter(&mut self, name: &'static str) {
        // rrq-lint: allow(no-unwrap-in-lib) -- the root node is pushed at construction and never popped
        let parent = *self.stack.last().expect("stack holds root");
        let idx = self.child_of(parent, name);
        self.stack.push(idx);
    }

    pub(crate) fn exit(&mut self, elapsed_ns: u64) {
        if self.stack.len() > 1 {
            // rrq-lint: allow(no-unwrap-in-lib) -- guarded by the len() > 1 check on the previous line
            let idx = self.stack.pop().expect("non-empty");
            self.nodes[idx].total_ns += elapsed_ns;
            self.nodes[idx].calls += 1;
        }
        // An unbalanced exit (guard misuse) is ignored rather than
        // corrupting the root.
    }

    pub(crate) fn add_leaf_ns(&mut self, name: &'static str, ns: u64) {
        // rrq-lint: allow(no-unwrap-in-lib) -- the root node is pushed at construction and never popped
        let parent = *self.stack.last().expect("stack holds root");
        let idx = self.child_of(parent, name);
        self.nodes[idx].total_ns += ns;
        self.nodes[idx].calls += 1;
    }

    /// Owned snapshot of the merged tree built so far.
    pub(crate) fn snapshot(&self) -> SpanTree {
        fn build(arena: &SpanArena, idx: usize) -> SpanNode {
            let n = &arena.nodes[idx];
            SpanNode {
                name: n.name.to_string(),
                total_ns: n.total_ns,
                calls: n.calls,
                children: n.children.iter().map(|&c| build(arena, c)).collect(),
            }
        }
        SpanTree {
            roots: self.nodes[0]
                .children
                .iter()
                .map(|&c| build(self, c))
                .collect(),
        }
    }
}

/// A collecting [`Recorder`]: aggregates spans into a merged phase tree
/// and keeps named counters. Single-threaded (interior mutability via
/// `RefCell`), matching the per-run usage of the benchmark harness; for
/// concurrent collection use [`crate::SharedRecorder`].
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    arena: RefCell<SpanArena>,
    counts: RefCell<BTreeMap<&'static str, u64>>,
}

impl MetricsRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the merged span tree.
    pub fn span_tree(&self) -> SpanTree {
        self.arena.borrow().snapshot()
    }

    /// Flattened phase rows (preorder, `a/b/c` paths) with self-times.
    pub fn phases(&self) -> Vec<PhaseStat> {
        self.span_tree().flatten()
    }

    /// Snapshot of the free-form counters.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counts
            .borrow()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// One counter by name (`None` if it never fired) — same shape as
    /// [`crate::SharedRecorder::counter`], so tests comparing a
    /// sequential run against a shard-merged one read identically.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counts.borrow().get(name).copied()
    }
}

impl Recorder for MetricsRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str) {
        self.arena.borrow_mut().enter(name);
    }

    fn span_exit(&self, elapsed_ns: u64) {
        self.arena.borrow_mut().exit(elapsed_ns);
    }

    fn add_ns(&self, name: &'static str, ns: u64) {
        self.arena.borrow_mut().add_leaf_ns(name, ns);
    }

    fn add_count(&self, name: &'static str, n: u64) {
        *self.counts.borrow_mut().entry(name).or_insert(0) += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        {
            let _g = span(&rec, "phase");
            rec.add_ns("leaf", 123);
            rec.add_count("c", 1);
        }
        // Nothing observable — and nothing to observe it with, which is
        // the point. The allocation-freedom of this path is asserted by
        // the `noop_alloc` integration test with a counting allocator.
    }

    #[test]
    fn spans_nest_and_aggregate_by_name() {
        let rec = MetricsRecorder::new();
        for _ in 0..3 {
            let _q = span(&rec, "query");
            {
                let _f = span(&rec, "filter");
                rec.add_ns("refine", 10);
            }
            {
                let _f = span(&rec, "filter"); // same name: merges
            }
        }
        let tree = rec.span_tree();
        assert_eq!(tree.roots.len(), 1);
        let q = &tree.roots[0];
        assert_eq!(q.name, "query");
        assert_eq!(q.calls, 3);
        assert_eq!(q.children.len(), 1, "filter spans merged");
        let f = &q.children[0];
        assert_eq!(f.name, "filter");
        assert_eq!(f.calls, 6);
        let r = &f.children[0];
        assert_eq!((r.name.as_str(), r.calls, r.total_ns), ("refine", 3, 30));
    }

    #[test]
    fn child_time_is_bounded_by_parent_time() {
        let rec = MetricsRecorder::new();
        {
            let _outer = span(&rec, "outer");
            let _inner = span(&rec, "inner");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let tree = rec.span_tree();
        let outer = &tree.roots[0];
        let inner = &outer.children[0];
        assert!(
            inner.total_ns <= outer.total_ns,
            "inner {} > outer {}",
            inner.total_ns,
            outer.total_ns
        );
    }

    #[test]
    fn timed_leaf_attributes_under_current_span() {
        let rec = MetricsRecorder::new();
        let out = {
            let _g = span(&rec, "scan");
            timed_leaf(&rec, "refine", || 7u32)
        };
        assert_eq!(out, 7);
        let phases = rec.phases();
        assert!(phases.iter().any(|p| p.path == "scan/refine"));
    }

    #[test]
    fn counters_accumulate() {
        let rec = MetricsRecorder::new();
        rec.add_count("nodes", 5);
        rec.add_count("nodes", 7);
        rec.add_count("leaves", 1);
        assert_eq!(
            rec.counters(),
            vec![("leaves".to_string(), 1), ("nodes".to_string(), 12)]
        );
    }

    #[test]
    fn as_sync_handoff_matches_thread_safety() {
        // Noop is freely shareable; the RefCell-based MetricsRecorder is
        // not; and the handoff must survive &dyn indirection (the shape
        // parallel engines actually receive).
        assert!(NoopRecorder.as_sync().is_some());
        let metrics = MetricsRecorder::new();
        assert!(metrics.as_sync().is_none());
        let dynamic: &dyn Recorder = &metrics;
        assert!(dynamic.as_sync().is_none());
        let dyn_noop: &dyn Recorder = &NoopRecorder;
        let sync = dyn_noop.as_sync().expect("noop hands off");
        assert!(!sync.enabled());
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let rec = MetricsRecorder::new();
        rec.span_exit(999); // no matching enter: must not corrupt state
        let _g = span(&rec, "ok");
        drop(_g);
        assert_eq!(rec.span_tree().roots.len(), 1);
    }
}
