//! Snapshot types for merged span trees.
//!
//! [`crate::MetricsRecorder`] aggregates RAII spans by `(parent, name)`;
//! these are the owned, exporter-friendly views it hands out.

/// One node of a merged phase tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase name as passed to `span!`.
    pub name: String,
    /// Wall time attributed to this phase across all its invocations,
    /// nanoseconds (children included).
    pub total_ns: u64,
    /// Number of times the phase was entered.
    pub calls: u64,
    /// Child phases, in first-seen order.
    pub children: Vec<SpanNode>,
}

/// A merged span tree (forest: one root per top-level phase).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Top-level phases in first-seen order.
    pub roots: Vec<SpanNode>,
}

/// One flattened phase row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Slash-joined path from the top-level phase, e.g. `"scan/refine"`.
    pub path: String,
    /// Nesting depth (top-level = 0).
    pub depth: usize,
    /// Entries into the phase.
    pub calls: u64,
    /// Total wall time, children included, nanoseconds.
    pub total_ns: u64,
    /// Wall time net of child phases, nanoseconds (clamped at 0: a child
    /// observed while its parent span was still open cannot drive the
    /// parent negative).
    pub self_ns: u64,
}

impl SpanTree {
    /// Flattens the tree into preorder rows with computed self-times.
    pub fn flatten(&self) -> Vec<PhaseStat> {
        let mut out = Vec::new();
        fn walk(node: &SpanNode, prefix: &str, depth: usize, out: &mut Vec<PhaseStat>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix}/{}", node.name)
            };
            let child_ns: u64 = node.children.iter().map(|c| c.total_ns).sum();
            out.push(PhaseStat {
                path: path.clone(),
                depth,
                calls: node.calls,
                total_ns: node.total_ns,
                self_ns: node.total_ns.saturating_sub(child_ns),
            });
            for c in &node.children {
                walk(c, &path, depth + 1, out);
            }
        }
        for r in &self.roots {
            walk(r, "", 0, &mut out);
        }
        out
    }

    /// Total wall time across the top-level phases, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Folds `other` into this tree: same-named siblings merge at every
    /// level (times and calls add, children merge recursively); phases
    /// only `other` saw are appended in its order. This is how the
    /// per-thread shards of a concurrent run collapse into the single
    /// tree a sequential run would have produced.
    pub fn merge(&mut self, other: &SpanTree) {
        fn merge_level(into: &mut Vec<SpanNode>, from: &[SpanNode]) {
            for node in from {
                if let Some(existing) = into.iter_mut().find(|n| n.name == node.name) {
                    existing.total_ns += node.total_ns;
                    existing.calls += node.calls;
                    merge_level(&mut existing.children, &node.children);
                } else {
                    into.push(node.clone());
                }
            }
        }
        merge_level(&mut self.roots, &other.roots);
    }

    /// Renders an indented text profile (for `--profile` style output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for row in self.flatten() {
            let name = row.path.rsplit('/').next().unwrap_or(&row.path);
            out.push_str(&format!(
                "{:indent$}{name:<24} {:>12.3} ms  ({} calls, self {:.3} ms)\n",
                "",
                row.total_ns as f64 / 1e6,
                row.calls,
                row.self_ns as f64 / 1e6,
                indent = row.depth * 2,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanTree {
        SpanTree {
            roots: vec![SpanNode {
                name: "query".into(),
                total_ns: 100,
                calls: 2,
                children: vec![
                    SpanNode {
                        name: "filter".into(),
                        total_ns: 70,
                        calls: 2,
                        children: vec![SpanNode {
                            name: "refine".into(),
                            total_ns: 30,
                            calls: 5,
                            children: vec![],
                        }],
                    },
                    SpanNode {
                        name: "heap".into(),
                        total_ns: 10,
                        calls: 2,
                        children: vec![],
                    },
                ],
            }],
        }
    }

    #[test]
    fn flatten_computes_paths_and_self_times() {
        let rows = sample().flatten();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["query", "query/filter", "query/filter/refine", "query/heap"]
        );
        assert_eq!(rows[0].self_ns, 100 - 70 - 10);
        assert_eq!(rows[1].self_ns, 70 - 30);
        assert_eq!(rows[2].self_ns, 30);
        assert_eq!(rows[0].depth, 0);
        assert_eq!(rows[2].depth, 2);
    }

    #[test]
    fn self_time_clamps_at_zero() {
        let tree = SpanTree {
            roots: vec![SpanNode {
                name: "p".into(),
                total_ns: 10,
                calls: 1,
                children: vec![SpanNode {
                    name: "c".into(),
                    total_ns: 25, // leaf accumulation can exceed an open parent
                    calls: 1,
                    children: vec![],
                }],
            }],
        };
        assert_eq!(tree.flatten()[0].self_ns, 0);
    }

    #[test]
    fn text_rendering_indents() {
        let text = sample().to_text();
        assert!(text.contains("query"));
        assert!(text.contains("  filter"));
        assert!(text.contains("    refine"));
    }

    #[test]
    fn total_sums_roots() {
        assert_eq!(sample().total_ns(), 100);
    }

    #[test]
    fn merge_folds_same_named_phases_and_appends_new_ones() {
        let mut a = sample();
        let mut b = sample();
        b.roots.push(SpanNode {
            name: "flush".into(),
            total_ns: 7,
            calls: 1,
            children: vec![],
        });
        a.merge(&b);
        assert_eq!(a.total_ns(), 207);
        let rows = a.flatten();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "query",
                "query/filter",
                "query/filter/refine",
                "query/heap",
                "flush"
            ],
            "same-named phases merged, new ones appended"
        );
        let refine = rows.iter().find(|r| r.path.ends_with("refine")).unwrap();
        assert_eq!((refine.calls, refine.total_ns), (10, 60));
    }

    #[test]
    fn merge_into_empty_clones() {
        let mut a = SpanTree::default();
        a.merge(&sample());
        assert_eq!(a, sample());
    }
}
