//! Chrome/Perfetto `trace_event` export for span trees, counter series
//! and flight records.
//!
//! The [trace event format] is a JSON document `{"traceEvents": [...]}`
//! that `chrome://tracing` and <https://ui.perfetto.dev> open directly.
//! [`TraceBuilder`] lays a merged [`SpanTree`] out as `B`/`E` duration
//! pairs (one pair per node; nesting is carried by strict stack order,
//! the same discipline the viewers use), a [`Sampler`] as `C` counter
//! events, and flight-recorder entries as `X` complete events.
//!
//! Timestamps in the format are *microseconds* — lossy for nanosecond
//! spans — so every `B` event also carries the node's exact `total_ns`
//! and `calls` in its `args`. [`span_tree_from_trace`] re-parses a
//! document from those: nesting comes from the `B`/`E` stack, names and
//! exact durations from the args, which makes the round trip
//! `SpanTree → trace JSON → SpanTree` exact (pinned by the
//! `trace_roundtrip` integration test). Viewer geometry note: a merged
//! tree stores *aggregate* durations, so children are laid out
//! back-to-back from the parent's start; a child sum exceeding its
//! parent (possible when leaves accumulate while the parent span is
//! still open) renders as overhang but re-parses exactly.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::Json;
use crate::sampler::Sampler;
use crate::span::{SpanNode, SpanTree};

/// Incrementally builds a `trace_event` JSON document. See the module
/// docs for the event vocabulary.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Json>,
}

fn ts_us(ns: u64) -> Json {
    // Viewers want microseconds; fractional values are allowed. Exact
    // nanosecond payloads ride in `args` where it matters.
    Json::Num(ns as f64 / 1000.0)
}

impl TraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events queued so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a process in the viewer (metadata event).
    pub fn add_process_name(&mut self, pid: u64, name: &str) {
        self.events.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(0)),
            ("args", Json::obj([("name", Json::str(name))])),
        ]));
    }

    /// Names a thread in the viewer (metadata event).
    pub fn add_thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(tid)),
            ("args", Json::obj([("name", Json::str(name))])),
        ]));
    }

    /// Lays out a merged span tree on `(pid, tid)` as nested `B`/`E`
    /// pairs starting at `origin_ns`, one pair per node, children
    /// back-to-back from the parent's start. Returns the nanosecond
    /// cursor after the last root (origin plus the tree's root total).
    pub fn add_span_tree(&mut self, pid: u64, tid: u64, origin_ns: u64, tree: &SpanTree) -> u64 {
        let mut cursor = origin_ns;
        for root in &tree.roots {
            self.emit_node(pid, tid, cursor, root);
            cursor += root.total_ns;
        }
        cursor
    }

    fn emit_node(&mut self, pid: u64, tid: u64, start_ns: u64, node: &SpanNode) {
        self.events.push(Json::obj([
            ("name", Json::str(&node.name)),
            ("cat", Json::str("rrq")),
            ("ph", Json::str("B")),
            ("ts", ts_us(start_ns)),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(tid)),
            (
                "args",
                Json::obj([
                    ("total_ns", Json::UInt(node.total_ns)),
                    ("calls", Json::UInt(node.calls)),
                ]),
            ),
        ]));
        let mut child_start = start_ns;
        for child in &node.children {
            self.emit_node(pid, tid, child_start, child);
            child_start += child.total_ns;
        }
        self.events.push(Json::obj([
            ("ph", Json::str("E")),
            ("ts", ts_us(start_ns + node.total_ns)),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(tid)),
        ]));
    }

    /// Exports a sampler as one `C` (counter) event per row; each column
    /// becomes a stacked series under the track named `name`.
    pub fn add_counter_series(&mut self, pid: u64, name: &str, sampler: &Sampler) {
        for (t_ns, row) in sampler.rows() {
            self.events.push(Json::obj([
                ("name", Json::str(name)),
                ("ph", Json::str("C")),
                ("ts", ts_us(*t_ns)),
                ("pid", Json::UInt(pid)),
                (
                    "args",
                    Json::Obj(
                        sampler
                            .names()
                            .iter()
                            .zip(row)
                            .map(|(col, v)| (col.clone(), Json::UInt(*v)))
                            .collect(),
                    ),
                ),
            ]));
        }
    }

    /// Adds one `X` (complete) event: a standalone slice of `dur_ns` at
    /// `start_ns` — how per-query flight records appear on the timeline.
    pub fn add_slice(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        start_ns: u64,
        dur_ns: u64,
        args: &[(&str, u64)],
    ) {
        self.events.push(Json::obj([
            ("name", Json::str(name)),
            ("cat", Json::str("rrq")),
            ("ph", Json::str("X")),
            ("ts", ts_us(start_ns)),
            ("dur", ts_us(dur_ns)),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(tid)),
            (
                "args",
                Json::Obj(
                    args.iter()
                        .map(|(k, v)| (k.to_string(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ]));
    }

    /// The finished `{"traceEvents": [...]}` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.events.clone())),
            ("displayTimeUnit", Json::str("ns")),
        ])
    }
}

fn field_u64(ev: &Json, key: &str) -> Result<u64, String> {
    ev.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("event lacks u64 member `{key}`"))
}

fn field_str<'j>(ev: &'j Json, key: &str) -> Result<&'j str, String> {
    ev.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("event lacks string member `{key}`"))
}

/// Reconstructs the [`SpanTree`] that [`TraceBuilder::add_span_tree`]
/// emitted onto `(pid, tid)`: `B`/`E` stack order restores the nesting,
/// the `args` payloads restore exact `total_ns`/`calls`. Errors on
/// malformed documents (unbalanced `B`/`E`, missing args).
pub fn span_tree_from_trace(doc: &Json, pid: u64, tid: u64) -> Result<SpanTree, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.items())
        .ok_or("document lacks a `traceEvents` array")?;
    let mut roots: Vec<SpanNode> = Vec::new();
    // Stack of open spans; `E` pops and attaches to the parent (or roots).
    let mut open: Vec<SpanNode> = Vec::new();
    for ev in events {
        let ph = field_str(ev, "ph")?;
        if !matches!(ph, "B" | "E") {
            continue; // metadata / counter / slice events
        }
        if field_u64(ev, "pid")? != pid || field_u64(ev, "tid")? != tid {
            continue;
        }
        match ph {
            "B" => {
                let args = ev.get("args").ok_or("B event lacks `args`")?;
                open.push(SpanNode {
                    name: field_str(ev, "name")?.to_string(),
                    total_ns: field_u64(args, "total_ns")?,
                    calls: field_u64(args, "calls")?,
                    children: Vec::new(),
                });
            }
            _ => {
                let done = open.pop().ok_or("unbalanced E event (empty stack)")?;
                match open.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => roots.push(done),
                }
            }
        }
    }
    if !open.is_empty() {
        return Err(format!(
            "{} span(s) left open (missing E events)",
            open.len()
        ));
    }
    Ok(SpanTree { roots })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> SpanTree {
        SpanTree {
            roots: vec![
                SpanNode {
                    name: "query".into(),
                    total_ns: 1_000,
                    calls: 4,
                    children: vec![
                        SpanNode {
                            name: "filter".into(),
                            total_ns: 700,
                            calls: 4,
                            children: vec![SpanNode {
                                name: "refine".into(),
                                total_ns: 250,
                                calls: 9,
                                children: vec![],
                            }],
                        },
                        SpanNode {
                            name: "heap".into(),
                            total_ns: 120,
                            calls: 4,
                            children: vec![],
                        },
                    ],
                },
                SpanNode {
                    name: "flush".into(),
                    total_ns: 55,
                    calls: 1,
                    children: vec![],
                },
            ],
        }
    }

    #[test]
    fn span_tree_round_trips_exactly() {
        let tree = sample_tree();
        let mut tb = TraceBuilder::new();
        tb.add_thread_name(1, 7, "worker-0");
        let end = tb.add_span_tree(1, 7, 500, &tree);
        assert_eq!(end, 500 + 1_000 + 55);
        let doc = tb.to_json();
        let back = span_tree_from_trace(&doc, 1, 7).expect("well-formed trace");
        assert_eq!(back, tree);
    }

    #[test]
    fn trees_on_other_threads_do_not_bleed() {
        let mut tb = TraceBuilder::new();
        tb.add_span_tree(1, 7, 0, &sample_tree());
        let other = SpanTree {
            roots: vec![SpanNode {
                name: "idle".into(),
                total_ns: 3,
                calls: 1,
                children: vec![],
            }],
        };
        tb.add_span_tree(1, 8, 0, &other);
        let doc = tb.to_json();
        assert_eq!(span_tree_from_trace(&doc, 1, 7).unwrap(), sample_tree());
        assert_eq!(span_tree_from_trace(&doc, 1, 8).unwrap(), other);
        assert_eq!(
            span_tree_from_trace(&doc, 9, 9).unwrap(),
            SpanTree::default(),
            "absent (pid, tid) yields an empty forest"
        );
    }

    #[test]
    fn document_parses_with_the_workspace_parser() {
        let mut tb = TraceBuilder::new();
        tb.add_process_name(1, "rrq-exp");
        tb.add_span_tree(1, 1, 0, &sample_tree());
        let mut s = Sampler::new(&["depth"], 0, 4);
        s.sample(0, &[2]);
        s.sample(10, &[5]);
        tb.add_counter_series(1, "pool", &s);
        tb.add_slice(1, 2, "rtk", 100, 42, &[("muls", 7)]);
        let text = tb.to_json().to_pretty();
        let parsed = crate::json::parse(&text).expect("self-generated JSON parses");
        let events = parsed.get("traceEvents").unwrap().items().unwrap();
        // 1 metadata + 5 nodes × (B+E) + 2 counters + 1 slice
        assert_eq!(events.len(), 1 + 10 + 2 + 1);
        assert_eq!(span_tree_from_trace(&parsed, 1, 1).unwrap(), sample_tree());
    }

    #[test]
    fn malformed_documents_error() {
        assert!(span_tree_from_trace(&Json::obj([("x", Json::UInt(1))]), 0, 0).is_err());
        // Unbalanced: a B with no E.
        let doc = Json::obj([(
            "traceEvents",
            Json::Arr(vec![Json::obj([
                ("name", Json::str("query")),
                ("ph", Json::str("B")),
                ("ts", Json::Num(0.0)),
                ("pid", Json::UInt(0)),
                ("tid", Json::UInt(0)),
                (
                    "args",
                    Json::obj([("total_ns", Json::UInt(1)), ("calls", Json::UInt(1))]),
                ),
            ])]),
        )]);
        let err = span_tree_from_trace(&doc, 0, 0).unwrap_err();
        assert!(err.contains("left open"), "{err}");
    }
}
