//! Opt-in heap tracking (`alloc-track` feature): a counting global
//! allocator and the snapshot API the benchmark harness turns into
//! per-experiment `alloc_total_bytes` / `alloc_peak_bytes` metrics.
//!
//! [`TrackingAlloc`] wraps the system allocator and maintains four
//! process-global atomics: bytes ever allocated, allocation calls, live
//! bytes, and the high-water mark of live bytes. Downstream crates (not
//! this one — installing an allocator is the *program's* decision)
//! enable the feature and declare:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rrq_obs::alloc::TrackingAlloc = rrq_obs::alloc::TrackingAlloc;
//! ```
//!
//! The harness brackets each timed batch with [`reset_peak`] +
//! [`snapshot`] deltas. Counters are relaxed atomics: the accounting is
//! exact for totals; the peak is exact when updates race-freely dominate
//! (single allocating thread) and a tight lower bound under concurrency.
//!
//! This is the one module of `rrq-obs` that needs `unsafe` (the
//! `GlobalAlloc` contract); the rest of the crate keeps denying it, and
//! with the feature off the whole crate still *forbids* it.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: u64) {
    // ORDERING: relaxed — independent monotone counters; totals stay
    // exact and the peak contract needs no happens-before edge.
    TOTAL_BYTES.fetch_add(bytes, Ordering::Relaxed);
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: u64) {
    // ORDERING: relaxed — counterpart of `on_alloc`; exactness of the
    // live total only needs atomicity, not ordering.
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

/// A counting allocator delegating to [`System`]. Zero-sized; install it
/// with `#[global_allocator]` in the binary that wants heap metrics.
pub struct TrackingAlloc;

// SAFETY: delegates allocation verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the bookkeeping only touches atomics.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    // SAFETY: forwards to `System.alloc_zeroed` with the caller's
    // layout unchanged; bookkeeping happens after the allocation.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    // SAFETY: `ptr`/`layout` come from the caller under the
    // `GlobalAlloc` contract and pass to `System.dealloc` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    // SAFETY: forwards `ptr`/`layout`/`new_size` verbatim to
    // `System.realloc`; the transfer accounting touches only atomics.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Account the transfer as free(old) + alloc(new) so totals
            // reflect bytes moved and live bytes stay exact.
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        new_ptr
    }
}

/// Point-in-time heap accounting, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Bytes ever handed out (monotonic).
    pub total_bytes: u64,
    /// Number of allocation calls (monotonic).
    pub alloc_calls: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes since process start or the last
    /// [`reset_peak`].
    pub peak_bytes: u64,
}

/// Reads the current counters. All zeros when [`TrackingAlloc`] is not
/// installed as the global allocator.
pub fn snapshot() -> AllocStats {
    // ORDERING: relaxed — monitoring reads taken between timed batches.
    AllocStats {
        total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        alloc_calls: ALLOC_CALLS.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// Whether any allocation has been observed — i.e. whether the tracking
/// allocator is actually installed in this program.
pub fn is_active() -> bool {
    // ORDERING: relaxed — a boolean probe; any nonzero value proves the
    // allocator is installed.
    ALLOC_CALLS.load(Ordering::Relaxed) > 0
}

/// Restarts the high-water mark from the current live size, so a
/// subsequent [`snapshot`] reports the peak *within* a measured region.
pub fn reset_peak() {
    // ORDERING: relaxed — called between timed batches; a racing
    // `fetch_max` can only raise the restarted mark, never corrupt it.
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}
