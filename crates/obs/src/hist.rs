//! Log-bucketed latency histograms (HDR-style).
//!
//! Values (nanoseconds, but any `u64` works) are binned into power-of-2
//! octaves, each subdivided into `2^SUB_BITS` linear sub-buckets, giving a
//! bounded relative error of `2^-SUB_BITS` (≈ 1.6 % here) across the whole
//! `u64` range with a fixed ~30 KB footprint. Supports `record`, `merge`
//! and percentile queries — everything the benchmark harness needs to
//! report `p50/p90/p99/max` per algorithm without keeping raw samples.

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` bins.
const SUB_BITS: u32 = 6;
/// Number of linear sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: one linear range `[0, 2^SUB_BITS)` plus
/// `64 - SUB_BITS` octaves of `2^SUB_BITS` buckets each.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// A mergeable log-linear histogram over `u64` values.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

/// Bucket index of `v`: identity below `2^SUB_BITS`, log-linear above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = octave - SUB_BITS;
    // `v >> shift` lies in `[2^SUB_BITS, 2^(SUB_BITS+1))`; its low SUB_BITS
    // bits are the linear position within the octave.
    let sub = ((v >> shift) & (SUB - 1)) as usize;
    ((octave - SUB_BITS + 1) as usize) << SUB_BITS | sub
}

/// Inclusive upper bound of bucket `idx` (the largest value mapping to it).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let octave = (idx >> SUB_BITS) as u32 - 1 + SUB_BITS;
    let sub = (idx as u64) & (SUB - 1);
    let shift = octave - SUB_BITS;
    // Lowest value of the bucket, plus the sub-bucket width minus one.
    ((SUB + sub) << shift) + ((1u64 << shift) - 1)
}

/// Inclusive lower bound of bucket `idx` (the smallest value mapping to it).
fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let octave = (idx >> SUB_BITS) as u32 - 1 + SUB_BITS;
    let sub = (idx as u64) & (SUB - 1);
    let shift = octave - SUB_BITS;
    (SUB + sub) << shift
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one (used to aggregate per-query
    /// or per-shard histograms).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Value at quantile `q ∈ [0, 1]`: an estimate of the sample at rank
    /// `⌈q·count⌉` (1-based), linearly interpolated *within* the log
    /// bucket that contains that rank.
    ///
    /// Error bound: the estimate and the true rank-`⌈q·count⌉` sample lie
    /// in the same bucket, so the absolute error is below one sub-bucket
    /// width — a relative error `< 2^-SUB_BITS` (1/64 ≈ 1.6 %) for values
    /// `≥ 2^SUB_BITS`, and exactly 0 in the linear range below it. The
    /// result is clamped to the exact observed `min`/`max`, which makes
    /// extreme quantiles *exact* at low sample counts: whenever
    /// `⌈q·count⌉ = count` (e.g. p999 with fewer than 1000 samples) the
    /// estimate is the true maximum, not a bucket bound. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // `pos ∈ [1, c]` is the rank's position among the `c`
                // samples in this bucket; spread the estimate linearly
                // across the bucket span so repeated quantiles of one
                // crowded bucket do not all collapse onto its upper
                // bound. `pos = c` yields the old upper-bound answer.
                let lo = bucket_lower(idx);
                let hi = bucket_upper(idx);
                let pos = target - (seen - c);
                let est = lo + ((hi - lo) as u128 * pos as u128 / c as u128) as u64;
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`LogHistogram::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile. Exact (equal to `max`) while fewer than 1000
    /// samples have been recorded — see [`LogHistogram::quantile`].
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Condenses the histogram into the summary the exporters embed.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean().unwrap_or(0.0),
            min_ns: self.min().unwrap_or(0),
            p50_ns: self.p50().unwrap_or(0),
            p90_ns: self.p90().unwrap_or(0),
            p99_ns: self.p99().unwrap_or(0),
            p999_ns: self.p999().unwrap_or(0),
            max_ns: self.max().unwrap_or(0),
        }
    }
}

/// Percentile digest of a latency distribution, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean_ns: f64,
    /// Exact minimum.
    pub min_ns: u64,
    /// Median (log-bucket resolution).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile (exact max below 1000 samples).
    pub p999_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut last = 0usize;
        // Dense low range, then exponentially spaced probes up to u64::MAX.
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(idx < NUM_BUCKETS);
            last = idx;
        }
        let mut v = 4096u64;
        while v < u64::MAX / 3 {
            let idx = bucket_index(v);
            assert!(idx >= last && idx < NUM_BUCKETS, "v = {v}");
            last = idx;
            v = v * 3 + 1;
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_upper_is_tight() {
        // Every value maps to a bucket whose upper bound is >= the value
        // and within the guaranteed relative error.
        let probes = [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            4095,
            4096,
            123_456,
            u32::MAX as u64,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let hi = bucket_upper(idx);
            assert!(hi >= v, "upper({idx}) = {hi} < {v}");
            if v >= SUB {
                let rel = (hi - v) as f64 / v as f64;
                assert!(rel <= 2.0 / SUB as f64, "relative error {rel} at {v}");
            } else {
                assert_eq!(hi, v, "low range is exact");
            }
            // The bound is tight: the next bucket starts above it.
            assert_eq!(bucket_index(hi), idx, "upper bound in same bucket");
            if hi < u64::MAX {
                assert!(bucket_index(hi + 1) > idx, "bound not tight at {v}");
            }
        }
    }

    #[test]
    fn exact_in_linear_range() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 5, 63] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.quantile(1.0), Some(63));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        assert_eq!(h.mean(), Some((1 + 5 + 5 + 63) as f64 / 5.0));
    }

    #[test]
    fn percentiles_match_sorted_oracle_within_error() {
        // Deterministic pseudo-random workload (no external PRNG here:
        // a simple LCG suffices for coverage).
        let mut x = 88172645463325252u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut h = LogHistogram::new();
        let mut raw: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = next() % 50_000_000; // up to 50 ms in ns
            raw.push(v);
            h.record(v);
        }
        raw.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let oracle = raw[(((q * raw.len() as f64).ceil() as usize).max(1)) - 1];
            let got = h.quantile(q).unwrap();
            // Interpolated estimate and oracle share a bucket: two-sided
            // relative error bound of one sub-bucket width.
            let rel = got.abs_diff(oracle) as f64 / oracle.max(1) as f64;
            assert!(rel <= 2.0 / SUB as f64 + 1e-9, "q{q}: error {rel}");
        }
        assert_eq!(h.quantile(1.0), Some(*raw.last().unwrap()));
    }

    #[test]
    fn quantiles_track_sorted_oracle_across_sample_sizes() {
        // Seeded property test: across sizes and value spreads, every
        // reported quantile stays within one sub-bucket width of the
        // exact sorted-sample quantile, and extreme quantiles whose rank
        // rounds up to `count` are *exact* (the low-sample-count p999
        // guarantee documented on `quantile`).
        let mut x = 0x9E3779B97F4A7C15u64; // fixed seed
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for n in [1usize, 3, 10, 100, 999, 1000, 5000] {
            for spread in [1_000u64, 1_000_000, u64::MAX / 2] {
                let mut h = LogHistogram::new();
                let mut raw: Vec<u64> = Vec::new();
                for _ in 0..n {
                    let v = next() % spread;
                    raw.push(v);
                    h.record(v);
                }
                raw.sort_unstable();
                for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                    let rank = ((q * n as f64).ceil() as usize).max(1);
                    let oracle = raw[rank - 1];
                    let got = h.quantile(q).unwrap();
                    let rel = got.abs_diff(oracle) as f64 / oracle.max(1) as f64;
                    assert!(
                        rel <= 2.0 / SUB as f64 + 1e-9,
                        "n={n} spread={spread} q={q}: got {got}, oracle {oracle}"
                    );
                    if rank == n {
                        assert_eq!(
                            got, oracle,
                            "rank==count must be the exact max (q={q}, n={n})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn p999_is_exact_max_below_1000_samples() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 999_999] {
            h.record(v);
        }
        assert_eq!(h.p999(), Some(999_999));
        let s = h.summary();
        assert_eq!(s.p999_ns, 999_999);
        assert!(s.p99_ns <= s.p999_ns && s.p999_ns <= s.max_ns);
    }

    #[test]
    fn interpolation_spreads_within_a_crowded_bucket() {
        // 4096 identical-bucket samples: without interpolation every
        // quantile would collapse onto the bucket's upper bound; with it
        // the estimates are strictly ordered across the bucket span.
        let mut h = LogHistogram::new();
        // One crowded log bucket: values in [1 << 20, (1 << 20) + width)
        // all share a bucket (width = 2^(20-SUB_BITS) = 16384).
        let base = 1u64 << 20;
        for i in 0..4096u64 {
            h.record(base + i * 4); // spans [base, base + 16380] — one bucket
        }
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!(
            p50 < p99,
            "interpolated quantiles must spread: {p50} vs {p99}"
        );
        let lo = bucket_lower(bucket_index(base));
        let hi = bucket_upper(bucket_index(base));
        assert!(p50 >= lo && p99 <= hi);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in 0..1000u64 {
            let v = v * v * 37; // spread across octaves
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(777, 5);
        a.record_n(0, 0); // no-op
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn summary_reports_percentile_ordering() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000);
        }
        let s = h.summary();
        assert!(s.min_ns <= s.p50_ns);
        assert!(s.p50_ns <= s.p90_ns);
        assert!(s.p90_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
        assert!(s.count == 10_000);
    }
}
