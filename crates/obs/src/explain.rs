//! Query explain: per-cell pruning provenance, filter→refine funnels and
//! bound-evolution timelines.
//!
//! The paper's contribution is *where* work disappears — grid cells
//! classified Precedes/Succeeds/Incomparable (Table 2 cases 1–3), Domin
//! buffer skips, rank-bound tightening — yet aggregate counters cannot say
//! *which cell* or *which weight* two engines disagreed on. This module
//! turns one RTK/RKR execution into an inspectable artifact:
//!
//! * [`ExplainSink`] is the instrumentation trait threaded through the
//!   engine's scan loops. Its no-op impl [`NoopSink`] compiles away:
//!   `enabled()` is a monomorphised constant `false`, every call site
//!   guards event construction behind it, and the existing alloc-track
//!   tests pin the untraced path at zero allocations.
//! * [`ExplainDoc`] is the collecting impl *and* the serialised artifact:
//!   a versioned, hand-rolled-JSON document holding the query header, a
//!   per-cell classification map (counts plus the grid bound values that
//!   decided each class), a filter→refine [`Funnel`] that reconciles
//!   exactly against the engine's `QueryStats`, and a [`BoundEvent`]
//!   timeline recording each RKR `minRank` / RTK saturation tightening
//!   with its source (local scan, shared atomic, epoch exchange).
//! * [`ExplainDoc::diff`] structurally compares two documents and returns
//!   the first [`Divergence`] — the cell, weight or bound event where two
//!   runs parted ways.
//!
//! Determinism contract: for a fixed engine and configuration the document
//! is a pure function of (data, query, shards, epoch), so two same-seed
//! runs serialise byte-identically. Across engines (sequential vs
//! `ParGir`) only the header and results are invariant — per-shard Domin
//! buffers legitimately change coverage — which is what
//! [`ExplainDoc::structural_eq`] checks.

use crate::json::{self, Json};
use std::collections::BTreeMap;

/// Version stamped into every serialised document. Bump on any schema
/// change; [`ExplainDoc::from_json`] rejects other versions loudly.
pub const EXPLAIN_SCHEMA: u64 = 1;

/// Which reverse rank query produced the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainKind {
    /// Reverse top-k (paper Alg. 2, GIRTop-k).
    Rtk,
    /// Reverse k-ranks (paper Alg. 3, GIRk-Ranks).
    Rkr,
}

impl ExplainKind {
    /// Canonical lowercase tag used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ExplainKind::Rtk => "rtk",
            ExplainKind::Rkr => "rkr",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse_str(s: &str) -> Result<Self, String> {
        match s {
            "rtk" => Ok(ExplainKind::Rtk),
            "rkr" => Ok(ExplainKind::Rkr),
            other => Err(format!("unknown explain kind {other:?}")),
        }
    }
}

/// Outcome of one grid classification (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainClass {
    /// Case 1: the point's upper score bound is strictly below `f_w(q)` —
    /// it precedes the query and is counted without refinement.
    Precedes,
    /// Case 2: the point's lower score bound is at least `f_w(q)` — it
    /// succeeds the query and is discarded without refinement.
    Succeeds,
    /// Case 3: the bounds straddle `f_w(q)` — an exact dot product decided.
    Refined,
}

/// Where a bound tightening came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSource {
    /// The worker's own scan tightened its local bound (sequential scans
    /// only ever emit this source).
    LocalScan,
    /// A peer's published value was observed through the shared atomic
    /// (`BoundMode::Shared`; inherently scheduling-dependent).
    SharedAtomic,
    /// A deterministic epoch exchange folded all workers' bounds
    /// (`BoundMode::Epoch`).
    EpochExchange,
}

impl BoundSource {
    /// Canonical lowercase tag used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            BoundSource::LocalScan => "local",
            BoundSource::SharedAtomic => "shared",
            BoundSource::EpochExchange => "epoch",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse_str(s: &str) -> Result<Self, String> {
        match s {
            "local" => Ok(BoundSource::LocalScan),
            "shared" => Ok(BoundSource::SharedAtomic),
            "epoch" => Ok(BoundSource::EpochExchange),
            other => Err(format!("unknown bound source {other:?}")),
        }
    }
}

/// One entry of the bound-evolution timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundEvent {
    /// Provenance of the tightening.
    pub source: BoundSource,
    /// The weight index the event is anchored to — or, for
    /// [`BoundSource::EpochExchange`], the epoch round number.
    pub weight: u64,
    /// The bound value after the event: the RKR `minRank` (heap
    /// threshold), or the dominator count for RTK saturation.
    pub bound: u64,
    /// Whether the event announced RTK saturation (≥ k dominators found,
    /// so the result set is globally empty).
    pub saturated: bool,
}

/// Per-class tally within one cell: how many points landed in the class
/// and the grid bound values that decided the *last* such point (scan
/// order is deterministic, so "last" is reproducible).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassTally {
    /// Number of (point, weight) classifications with this outcome.
    pub count: u64,
    /// `score_lower` (Eq. 3) of the last point decided into this class.
    pub lower: f64,
    /// `score_upper` (Eq. 4) of the last point decided into this class.
    pub upper: f64,
}

impl ClassTally {
    fn observe(&mut self, lower: f64, upper: f64) {
        self.count += 1;
        self.lower = lower;
        self.upper = upper;
    }

    fn merge(&mut self, other: &ClassTally) {
        self.count += other.count;
        if other.count > 0 {
            self.lower = other.lower;
            self.upper = other.upper;
        }
    }
}

/// Aggregated provenance for one grid cell (keyed by the point's
/// quantised coordinate row `P^(A)[p]`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellExplain {
    /// Case 1 classifications (filtered, counted into the rank).
    pub case1: ClassTally,
    /// Case 2 classifications (filtered, discarded).
    pub case2: ClassTally,
    /// Case 3 classifications (refined with an exact dot product).
    pub refined: ClassTally,
    /// Scans that skipped a point in this cell because the Domin buffer
    /// already knew it dominates the query.
    pub domin_skips: u64,
    /// Points in this cell inserted into the Domin buffer (cell-level
    /// domination test passed).
    pub domin_inserts: u64,
}

impl CellExplain {
    fn merge(&mut self, other: &CellExplain) {
        self.case1.merge(&other.case1);
        self.case2.merge(&other.case2);
        self.refined.merge(&other.refined);
        self.domin_skips += other.domin_skips;
        self.domin_inserts += other.domin_inserts;
    }
}

/// The filter→refine funnel: how many candidate pairs entered each stage.
///
/// Reconciles *exactly* against the engine's `QueryStats` counters — see
/// [`Funnel::reconcile`] — which is the self-check that the explain layer
/// observed every event the engine booked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Funnel {
    /// Weight vectors whose scan started (`weights_visited`).
    pub weights: u64,
    /// Points classified by the grid (`points_visited`); always equals
    /// `case1 + case2 + refined`.
    pub scanned: u64,
    /// Case 1 filter hits (`filtered_case1`).
    pub case1: u64,
    /// Case 2 filter hits (`filtered_case2`).
    pub case2: u64,
    /// Case 3 refinements (`refined`).
    pub refined: u64,
    /// Points skipped via the Domin buffer (`domin_skips`).
    pub domin_skips: u64,
    /// Scans cut short by the rank bound (`early_terminations`).
    pub early_terminations: u64,
    /// Weights decided by a materialized k-th-score threshold comparison
    /// without a grid scan (`threshold_hits`). These weights never reach
    /// `classify`, so they are *not* part of `scanned`.
    pub threshold_hits: u64,
    /// Tombstoned entries skipped (`tombstones_skipped`). Tombstoned
    /// points/weights never reach `classify`, so they are not part of
    /// `scanned`.
    pub tombstones: u64,
    /// Live append-log entries examined (`appended_scanned`). Appended
    /// points *do* reach `classify` and are therefore also counted in
    /// `scanned`; this field tallies how many of the scanned entries came
    /// from the append tail.
    pub appended: u64,
    /// Threshold rows repaired (`threshold_rows_repaired`). Write-side:
    /// query scans book zero, so explained queries mirror zero.
    pub rows_repaired: u64,
    /// Epochs published (`epoch_published`). Write-side like
    /// `rows_repaired`.
    pub epochs_published: u64,
}

impl Funnel {
    /// Checks internal consistency and exact agreement with the engine's
    /// counters, given as the `(name, value)` pairs of
    /// `QueryStats::counters()`. Counter names the funnel does not mirror
    /// (multiplications, tree traversal, …) are ignored; a *missing*
    /// mirrored name is an error so schema drift fails loudly.
    pub fn reconcile(&self, counters: &[(&str, u64)]) -> Result<(), String> {
        if self.scanned != self.case1 + self.case2 + self.refined {
            return Err(format!(
                "funnel inconsistent: scanned {} != case1 {} + case2 {} + refined {}",
                self.scanned, self.case1, self.case2, self.refined
            ));
        }
        let expect = [
            ("weights_visited", self.weights),
            ("points_visited", self.scanned),
            ("filtered_case1", self.case1),
            ("filtered_case2", self.case2),
            ("refined", self.refined),
            ("domin_skips", self.domin_skips),
            ("early_terminations", self.early_terminations),
            ("threshold_hits", self.threshold_hits),
            ("tombstones_skipped", self.tombstones),
            ("appended_scanned", self.appended),
            ("threshold_rows_repaired", self.rows_repaired),
            ("epoch_published", self.epochs_published),
        ];
        for (name, want) in expect {
            let got = counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("engine counters missing {name:?}"))?;
            if got != want {
                return Err(format!(
                    "funnel/{name} mismatch: explain saw {want}, engine counted {got}"
                ));
            }
        }
        Ok(())
    }
}

/// Sentinel rank recorded with [`ExplainSink::result`] when membership
/// was certified by a threshold comparison without computing the exact
/// rank (the `ThresholdIndex` short-circuit): the weight is in the
/// result, its rank is only known to be `< k`.
pub const RANK_CERTIFIED: u64 = u64::MAX;

/// Instrumentation hooks the engine's scan loops call.
///
/// Mirrors the `Recorder` pattern: generic monomorphisation plus an
/// `enabled()` gate that call sites consult *before* constructing event
/// arguments, so the [`NoopSink`] path is branch-predictable and
/// allocation-free. All event methods default to no-ops — a sink
/// implements only what it cares about.
pub trait ExplainSink {
    /// Whether events should be constructed at all. [`NoopSink`] returns a
    /// constant `false` the optimiser erases.
    fn enabled(&self) -> bool;

    /// A query began: kind, query point, `k` and the grid partition count.
    fn begin_query(&mut self, kind: ExplainKind, q: &[f64], k: u64, partitions: u64) {
        let _ = (kind, q, k, partitions);
    }

    /// A weight vector's scan started.
    fn weight(&mut self, wid: u64) {
        let _ = wid;
    }

    /// One grid classification: the point's quantised cell, the outcome
    /// class and the lower/upper score bounds (Eq. 3/4) that decided it.
    fn classify(&mut self, cell: &[u8], class: ExplainClass, lower: f64, upper: f64) {
        let _ = (cell, class, lower, upper);
    }

    /// A point was skipped because the Domin buffer already holds it.
    fn domin_skip(&mut self, cell: &[u8]) {
        let _ = cell;
    }

    /// A point passed the cell-domination test and entered the Domin
    /// buffer.
    fn domin_insert(&mut self, cell: &[u8]) {
        let _ = cell;
    }

    /// A per-weight scan stopped early because the rank exceeded the
    /// bound.
    fn early_termination(&mut self) {}

    /// A tombstoned (deleted) point or weight was skipped by a scan over
    /// a mutable snapshot.
    fn tombstone_skip(&mut self) {}

    /// A live append-log entry (point or weight inserted after the base
    /// build) was examined by a scan over a mutable snapshot.
    fn appended_scan(&mut self) {}

    /// A weight was decided by the materialized threshold index — one
    /// comparison against the k-th-best score instead of a grid scan.
    /// `member` is whether the comparison certified RTK membership (for
    /// RKR skips it is always `false`).
    fn threshold_hit(&mut self, wid: u64, member: bool) {
        let _ = (wid, member);
    }

    /// The scan bound tightened (or saturation was observed).
    fn bound_event(&mut self, source: BoundSource, weight: u64, bound: u64, saturated: bool) {
        let _ = (source, weight, bound, saturated);
    }

    /// A weight entered the result set with the given exact rank.
    fn result(&mut self, wid: u64, rank: u64) {
        let _ = (wid, rank);
    }

    /// RTK saturation proved the result set globally empty: drop any
    /// result events recorded before the proof landed.
    fn invalidate_results(&mut self) {}

    /// Folds a shard sink produced by a parallel worker into this one.
    /// Callers merge in worker-index order so the outcome is
    /// deterministic.
    fn absorb(&mut self, shard: Self)
    where
        Self: Sized,
    {
        let _ = shard;
    }
}

/// The zero-cost sink threaded through untraced query paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl ExplainSink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// A structured, versioned, diffable record of one query execution.
///
/// Doubles as the collecting [`ExplainSink`]: hand a `&mut ExplainDoc` to
/// an `*_explained` entry point and it fills itself. Serialises with
/// [`Self::to_json`] / parses with [`Self::from_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplainDoc {
    /// Query kind; `None` until a query ran into this document.
    pub kind: Option<ExplainKind>,
    /// Engine label (`"GIR"`, `"ParGir"`, …). Identity metadata: excluded
    /// from [`Self::structural_eq`].
    pub engine: String,
    /// Engine configuration pairs (threads, bound mode, …). Identity
    /// metadata like `engine`.
    pub config: Vec<(String, String)>,
    /// The query's `k`.
    pub k: u64,
    /// Dimensionality of the query point.
    pub dims: u64,
    /// Grid partitions per dimension (`n` in the paper).
    pub partitions: u64,
    /// The query point.
    pub q: Vec<f64>,
    /// The filter→refine funnel.
    pub funnel: Funnel,
    /// Per-cell provenance, keyed by the quantised point row. BTreeMap so
    /// serialisation order is deterministic.
    pub cells: BTreeMap<Vec<u8>, CellExplain>,
    /// Bound-evolution timeline in observation order (shard-merged in
    /// worker-index order for parallel runs).
    pub timeline: Vec<BoundEvent>,
    /// Result set as `(weight_id, exact_rank)` pairs. Exact ranks are an
    /// engine invariant, so this section participates in
    /// [`Self::structural_eq`].
    pub results: Vec<(u64, u64)>,
}

impl ExplainSink for ExplainDoc {
    fn enabled(&self) -> bool {
        true
    }

    fn begin_query(&mut self, kind: ExplainKind, q: &[f64], k: u64, partitions: u64) {
        self.kind = Some(kind);
        self.q = q.to_vec();
        self.dims = q.len() as u64;
        self.k = k;
        self.partitions = partitions;
    }

    fn weight(&mut self, wid: u64) {
        let _ = wid;
        self.funnel.weights += 1;
    }

    fn classify(&mut self, cell: &[u8], class: ExplainClass, lower: f64, upper: f64) {
        self.funnel.scanned += 1;
        let entry = self.cells.entry(cell.to_vec()).or_default();
        match class {
            ExplainClass::Precedes => {
                self.funnel.case1 += 1;
                entry.case1.observe(lower, upper);
            }
            ExplainClass::Succeeds => {
                self.funnel.case2 += 1;
                entry.case2.observe(lower, upper);
            }
            ExplainClass::Refined => {
                self.funnel.refined += 1;
                entry.refined.observe(lower, upper);
            }
        }
    }

    fn domin_skip(&mut self, cell: &[u8]) {
        self.funnel.domin_skips += 1;
        self.cells.entry(cell.to_vec()).or_default().domin_skips += 1;
    }

    fn domin_insert(&mut self, cell: &[u8]) {
        self.cells.entry(cell.to_vec()).or_default().domin_inserts += 1;
    }

    fn early_termination(&mut self) {
        self.funnel.early_terminations += 1;
    }

    fn tombstone_skip(&mut self) {
        self.funnel.tombstones += 1;
    }

    fn appended_scan(&mut self) {
        self.funnel.appended += 1;
    }

    fn threshold_hit(&mut self, wid: u64, member: bool) {
        let _ = (wid, member);
        self.funnel.threshold_hits += 1;
    }

    fn bound_event(&mut self, source: BoundSource, weight: u64, bound: u64, saturated: bool) {
        self.timeline.push(BoundEvent {
            source,
            weight,
            bound,
            saturated,
        });
    }

    fn result(&mut self, wid: u64, rank: u64) {
        self.results.push((wid, rank));
    }

    fn invalidate_results(&mut self) {
        self.results.clear();
    }

    fn absorb(&mut self, shard: Self) {
        self.funnel.weights += shard.funnel.weights;
        self.funnel.scanned += shard.funnel.scanned;
        self.funnel.case1 += shard.funnel.case1;
        self.funnel.case2 += shard.funnel.case2;
        self.funnel.refined += shard.funnel.refined;
        self.funnel.domin_skips += shard.funnel.domin_skips;
        self.funnel.early_terminations += shard.funnel.early_terminations;
        self.funnel.threshold_hits += shard.funnel.threshold_hits;
        self.funnel.tombstones += shard.funnel.tombstones;
        self.funnel.appended += shard.funnel.appended;
        self.funnel.rows_repaired += shard.funnel.rows_repaired;
        self.funnel.epochs_published += shard.funnel.epochs_published;
        for (cell, agg) in shard.cells {
            self.cells.entry(cell).or_default().merge(&agg);
        }
        self.timeline.extend(shard.timeline);
        self.results.extend(shard.results);
    }
}

fn req<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing member {key:?}"))
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    req(j, key)?
        .as_u64()
        .ok_or_else(|| format!("member {key:?} is not an unsigned integer"))
}

/// An unsigned member that older document versions may omit (defaults to
/// zero); present-but-mistyped is still an error.
fn opt_u64(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("member {key:?} is not an unsigned integer")),
        None => Ok(0),
    }
}

fn req_f64(j: &Json, key: &str) -> Result<f64, String> {
    req(j, key)?
        .as_f64()
        .ok_or_else(|| format!("member {key:?} is not a number"))
}

fn req_str(j: &Json, key: &str) -> Result<String, String> {
    Ok(req(j, key)?
        .as_str()
        .ok_or_else(|| format!("member {key:?} is not a string"))?
        .to_string())
}

fn req_bool(j: &Json, key: &str) -> Result<bool, String> {
    match req(j, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("member {key:?} is not a boolean")),
    }
}

fn req_arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req(j, key)?
        .items()
        .ok_or_else(|| format!("member {key:?} is not an array"))
}

/// Renders a quantised cell row as the dotted key used in JSON and diff
/// output, e.g. `[3, 1, 4]` → `"3.1.4"`.
pub fn cell_key(cell: &[u8]) -> String {
    let parts: Vec<String> = cell.iter().map(|c| c.to_string()).collect();
    parts.join(".")
}

fn parse_cell_key(s: &str) -> Result<Vec<u8>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|p| {
            p.parse::<u8>()
                .map_err(|_| format!("bad cell key component {p:?}"))
        })
        .collect()
}

fn tally_to_json(t: &ClassTally) -> Json {
    Json::obj([
        ("count", Json::UInt(t.count)),
        ("lower", Json::Num(t.lower)),
        ("upper", Json::Num(t.upper)),
    ])
}

fn tally_from_json(j: &Json) -> Result<ClassTally, String> {
    Ok(ClassTally {
        count: req_u64(j, "count")?,
        lower: req_f64(j, "lower")?,
        upper: req_f64(j, "upper")?,
    })
}

impl ExplainDoc {
    /// A fresh, empty document ready to record one query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the engine label (identity metadata, not diffed structurally).
    pub fn set_engine(&mut self, engine: &str) {
        self.engine = engine.to_string();
    }

    /// Appends one engine-configuration pair.
    pub fn push_config(&mut self, key: &str, value: &str) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Serialises to the schema-versioned JSON tree.
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|(cell, agg)| {
                Json::obj([
                    ("cell", Json::str(cell_key(cell))),
                    ("case1", tally_to_json(&agg.case1)),
                    ("case2", tally_to_json(&agg.case2)),
                    ("refined", tally_to_json(&agg.refined)),
                    ("domin_skips", Json::UInt(agg.domin_skips)),
                    ("domin_inserts", Json::UInt(agg.domin_inserts)),
                ])
            })
            .collect();
        let timeline: Vec<Json> = self
            .timeline
            .iter()
            .map(|e| {
                Json::obj([
                    ("source", Json::str(e.source.as_str())),
                    ("weight", Json::UInt(e.weight)),
                    ("bound", Json::UInt(e.bound)),
                    ("saturated", Json::Bool(e.saturated)),
                ])
            })
            .collect();
        let results: Vec<Json> = self
            .results
            .iter()
            .map(|(wid, rank)| Json::Arr(vec![Json::UInt(*wid), Json::UInt(*rank)]))
            .collect();
        Json::obj([
            ("schema", Json::UInt(EXPLAIN_SCHEMA)),
            (
                "kind",
                match self.kind {
                    Some(k) => Json::str(k.as_str()),
                    None => Json::Null,
                },
            ),
            ("engine", Json::str(self.engine.clone())),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                        .collect(),
                ),
            ),
            ("k", Json::UInt(self.k)),
            ("dims", Json::UInt(self.dims)),
            ("partitions", Json::UInt(self.partitions)),
            (
                "q",
                Json::Arr(self.q.iter().map(|&v| Json::Num(v)).collect()),
            ),
            (
                "funnel",
                Json::obj([
                    ("weights", Json::UInt(self.funnel.weights)),
                    ("scanned", Json::UInt(self.funnel.scanned)),
                    ("case1", Json::UInt(self.funnel.case1)),
                    ("case2", Json::UInt(self.funnel.case2)),
                    ("refined", Json::UInt(self.funnel.refined)),
                    ("domin_skips", Json::UInt(self.funnel.domin_skips)),
                    (
                        "early_terminations",
                        Json::UInt(self.funnel.early_terminations),
                    ),
                    ("threshold_hits", Json::UInt(self.funnel.threshold_hits)),
                    ("tombstones", Json::UInt(self.funnel.tombstones)),
                    ("appended", Json::UInt(self.funnel.appended)),
                    ("rows_repaired", Json::UInt(self.funnel.rows_repaired)),
                    ("epochs_published", Json::UInt(self.funnel.epochs_published)),
                ]),
            ),
            ("cells", Json::Arr(cells)),
            ("timeline", Json::Arr(timeline)),
            ("results", Json::Arr(results)),
        ])
    }

    /// Serialises to pretty-printed JSON text (the on-disk format).
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Decodes a document, rejecting unknown schema versions loudly.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let schema = req_u64(j, "schema")?;
        if schema != EXPLAIN_SCHEMA {
            return Err(format!(
                "unsupported explain schema {schema} (this build reads {EXPLAIN_SCHEMA})"
            ));
        }
        let kind = match req(j, "kind")? {
            Json::Null => None,
            Json::Str(s) => Some(ExplainKind::parse_str(s)?),
            _ => return Err("member \"kind\" is neither null nor a string".to_string()),
        };
        let config = req(j, "config")?
            .entries()
            .ok_or_else(|| "member \"config\" is not an object".to_string())?
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("config value {k:?} is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let q = req_arr(j, "q")?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| "q entry not a number".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let f = req(j, "funnel")?;
        let funnel = Funnel {
            weights: req_u64(f, "weights")?,
            scanned: req_u64(f, "scanned")?,
            case1: req_u64(f, "case1")?,
            case2: req_u64(f, "case2")?,
            refined: req_u64(f, "refined")?,
            domin_skips: req_u64(f, "domin_skips")?,
            early_terminations: req_u64(f, "early_terminations")?,
            // Absent in documents written before the threshold index
            // existed; those engines could not have short-circuited.
            threshold_hits: match f.get("threshold_hits") {
                Some(v) => v.as_u64().ok_or_else(|| {
                    "member \"threshold_hits\" is not an unsigned integer".to_string()
                })?,
                None => 0,
            },
            // Absent in documents written before the update subsystem
            // existed; immutable engines book none of these.
            tombstones: opt_u64(f, "tombstones")?,
            appended: opt_u64(f, "appended")?,
            rows_repaired: opt_u64(f, "rows_repaired")?,
            epochs_published: opt_u64(f, "epochs_published")?,
        };
        let mut cells = BTreeMap::new();
        for c in req_arr(j, "cells")? {
            let key = parse_cell_key(&req_str(c, "cell")?)?;
            let agg = CellExplain {
                case1: tally_from_json(req(c, "case1")?)?,
                case2: tally_from_json(req(c, "case2")?)?,
                refined: tally_from_json(req(c, "refined")?)?,
                domin_skips: req_u64(c, "domin_skips")?,
                domin_inserts: req_u64(c, "domin_inserts")?,
            };
            if cells.insert(key.clone(), agg).is_some() {
                return Err(format!("duplicate cell {:?}", cell_key(&key)));
            }
        }
        let timeline = req_arr(j, "timeline")?
            .iter()
            .map(|e| {
                Ok(BoundEvent {
                    source: BoundSource::parse_str(&req_str(e, "source")?)?,
                    weight: req_u64(e, "weight")?,
                    bound: req_u64(e, "bound")?,
                    saturated: req_bool(e, "saturated")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let results = req_arr(j, "results")?
            .iter()
            .map(|r| {
                let pair = r
                    .items()
                    .filter(|it| it.len() == 2)
                    .ok_or_else(|| "result entry is not a [wid, rank] pair".to_string())?;
                let wid = pair[0]
                    .as_u64()
                    .ok_or_else(|| "result wid not an integer".to_string())?;
                let rank = pair[1]
                    .as_u64()
                    .ok_or_else(|| "result rank not an integer".to_string())?;
                Ok((wid, rank))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ExplainDoc {
            kind,
            engine: req_str(j, "engine")?,
            config,
            k: req_u64(j, "k")?,
            dims: req_u64(j, "dims")?,
            partitions: req_u64(j, "partitions")?,
            q,
            funnel,
            cells,
            timeline,
            results,
        })
    }

    /// Parses a serialised document from JSON text.
    pub fn parse(input: &str) -> Result<Self, String> {
        Self::from_json(&json::parse(input)?)
    }

    /// Structural equality: header (kind, k, dims, partitions, q) and the
    /// result set — the parts every correct engine must agree on
    /// regardless of coverage differences.
    pub fn structural_eq(&self, other: &ExplainDoc) -> bool {
        self.diff(other, true).is_none()
    }

    /// Returns the first divergence between two documents, or `None` if
    /// they agree.
    ///
    /// With `structural` set, only the header and results are compared
    /// (the cross-engine contract). A full diff additionally walks the
    /// funnel, the cell map (BTreeMap order, so "first" is the smallest
    /// divergent cell key) and the bound timeline — the run-vs-run
    /// determinism contract for a fixed engine and configuration.
    pub fn diff(&self, other: &ExplainDoc, structural: bool) -> Option<Divergence> {
        fn d(
            section: &'static str,
            key: impl Into<String>,
            a: impl Into<String>,
            b: impl Into<String>,
        ) -> Option<Divergence> {
            Some(Divergence {
                section,
                key: key.into(),
                a: a.into(),
                b: b.into(),
            })
        }
        let kind_str = |k: Option<ExplainKind>| k.map(|k| k.as_str()).unwrap_or("unset");
        if self.kind != other.kind {
            return d("header", "kind", kind_str(self.kind), kind_str(other.kind));
        }
        for (key, a, b) in [
            ("k", self.k, other.k),
            ("dims", self.dims, other.dims),
            ("partitions", self.partitions, other.partitions),
        ] {
            if a != b {
                return d("header", key, a.to_string(), b.to_string());
            }
        }
        if self.q.len() != other.q.len() {
            return d(
                "header",
                "q.len",
                self.q.len().to_string(),
                other.q.len().to_string(),
            );
        }
        for (i, (a, b)) in self.q.iter().zip(&other.q).enumerate() {
            if a.to_bits() != b.to_bits() {
                return d(
                    "header",
                    format!("q[{i}]"),
                    format!("{a:?}"),
                    format!("{b:?}"),
                );
            }
        }
        if self.results != other.results {
            let n = self.results.len().min(other.results.len());
            for i in 0..n {
                if self.results[i] != other.results[i] {
                    let (aw, ar) = self.results[i];
                    let (bw, br) = other.results[i];
                    return d(
                        "results",
                        format!("[{i}]"),
                        format!("w{aw} rank {ar}"),
                        format!("w{bw} rank {br}"),
                    );
                }
            }
            return d(
                "results",
                "len",
                self.results.len().to_string(),
                other.results.len().to_string(),
            );
        }
        if structural {
            return None;
        }
        if self.engine != other.engine {
            return d("header", "engine", &self.engine, &other.engine);
        }
        if self.config != other.config {
            return d(
                "header",
                "config",
                format!("{:?}", self.config),
                format!("{:?}", other.config),
            );
        }
        for (key, a, b) in [
            ("weights", self.funnel.weights, other.funnel.weights),
            ("scanned", self.funnel.scanned, other.funnel.scanned),
            ("case1", self.funnel.case1, other.funnel.case1),
            ("case2", self.funnel.case2, other.funnel.case2),
            ("refined", self.funnel.refined, other.funnel.refined),
            (
                "domin_skips",
                self.funnel.domin_skips,
                other.funnel.domin_skips,
            ),
            (
                "early_terminations",
                self.funnel.early_terminations,
                other.funnel.early_terminations,
            ),
            (
                "threshold_hits",
                self.funnel.threshold_hits,
                other.funnel.threshold_hits,
            ),
            (
                "tombstones",
                self.funnel.tombstones,
                other.funnel.tombstones,
            ),
            ("appended", self.funnel.appended, other.funnel.appended),
            (
                "rows_repaired",
                self.funnel.rows_repaired,
                other.funnel.rows_repaired,
            ),
            (
                "epochs_published",
                self.funnel.epochs_published,
                other.funnel.epochs_published,
            ),
        ] {
            if a != b {
                return d("funnel", key, a.to_string(), b.to_string());
            }
        }
        let keys: std::collections::BTreeSet<&Vec<u8>> =
            self.cells.keys().chain(other.cells.keys()).collect();
        for cell in keys {
            let key = cell_key(cell);
            match (self.cells.get(cell), other.cells.get(cell)) {
                (Some(_), None) => return d("cell", key, "present", "absent"),
                (None, Some(_)) => return d("cell", key, "absent", "present"),
                (Some(a), Some(b)) if a != b => {
                    for (field, ta, tb) in [
                        ("case1", &a.case1, &b.case1),
                        ("case2", &a.case2, &b.case2),
                        ("refined", &a.refined, &b.refined),
                    ] {
                        if ta.count != tb.count {
                            return d(
                                "cell",
                                key,
                                format!("{field}.count={}", ta.count),
                                format!("{field}.count={}", tb.count),
                            );
                        }
                        if ta.lower.to_bits() != tb.lower.to_bits()
                            || ta.upper.to_bits() != tb.upper.to_bits()
                        {
                            return d(
                                "cell",
                                key,
                                format!("{field} bounds [{:?}, {:?}]", ta.lower, ta.upper),
                                format!("{field} bounds [{:?}, {:?}]", tb.lower, tb.upper),
                            );
                        }
                    }
                    if a.domin_skips != b.domin_skips {
                        return d(
                            "cell",
                            key,
                            format!("domin_skips={}", a.domin_skips),
                            format!("domin_skips={}", b.domin_skips),
                        );
                    }
                    return d(
                        "cell",
                        key,
                        format!("domin_inserts={}", a.domin_inserts),
                        format!("domin_inserts={}", b.domin_inserts),
                    );
                }
                _ => {}
            }
        }
        let n = self.timeline.len().min(other.timeline.len());
        for i in 0..n {
            let (a, b) = (&self.timeline[i], &other.timeline[i]);
            if a != b {
                let fmt = |e: &BoundEvent| {
                    format!(
                        "{} w{} bound {}{}",
                        e.source.as_str(),
                        e.weight,
                        e.bound,
                        if e.saturated { " saturated" } else { "" }
                    )
                };
                return d("timeline", format!("[{i}]"), fmt(a), fmt(b));
            }
        }
        if self.timeline.len() != other.timeline.len() {
            return d(
                "timeline",
                "len",
                self.timeline.len().to_string(),
                other.timeline.len().to_string(),
            );
        }
        None
    }

    /// Pretty-prints the document as a funnel bar chart plus an ASCII
    /// heatmap of refinement concentration over the first two grid
    /// dimensions.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let kind = self.kind.map(|k| k.as_str()).unwrap_or("unset");
        out.push_str(&format!(
            "explain {kind} k={} dims={} n={} engine={}",
            self.k, self.dims, self.partitions, self.engine
        ));
        if !self.config.is_empty() {
            let pairs: Vec<String> = self
                .config
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!(" ({})", pairs.join(", ")));
        }
        out.push('\n');
        let qs: Vec<String> = self.q.iter().map(|v| format!("{v:.4}")).collect();
        out.push_str(&format!("q = [{}]\n\nfunnel\n", qs.join(", ")));
        let rows = [
            ("weights", self.funnel.weights),
            ("scanned", self.funnel.scanned),
            ("case1 (precede)", self.funnel.case1),
            ("case2 (succeed)", self.funnel.case2),
            ("refined", self.funnel.refined),
            ("domin skips", self.funnel.domin_skips),
            ("early terms", self.funnel.early_terminations),
            ("threshold hits", self.funnel.threshold_hits),
            ("tombstones", self.funnel.tombstones),
            ("appended", self.funnel.appended),
            ("rows repaired", self.funnel.rows_repaired),
            ("epochs", self.funnel.epochs_published),
        ];
        let max = rows.iter().map(|(_, v)| *v).max().unwrap_or(0).max(1);
        for (label, value) in rows {
            let width = ((value as u128 * 40) / max as u128) as usize;
            out.push_str(&format!(
                "  {label:<16} {value:>12} |{}|\n",
                "#".repeat(width)
            ));
        }
        out.push('\n');
        out.push_str(&self.render_heatmap());
        out.push_str(&format!(
            "\ntimeline: {} events (local={}, shared={}, epoch={})\n",
            self.timeline.len(),
            self.count_source(BoundSource::LocalScan),
            self.count_source(BoundSource::SharedAtomic),
            self.count_source(BoundSource::EpochExchange),
        ));
        out.push_str(&format!("results: {}\n", self.results.len()));
        out
    }

    fn count_source(&self, s: BoundSource) -> usize {
        self.timeline.iter().filter(|e| e.source == s).count()
    }

    fn render_heatmap(&self) -> String {
        if self.cells.is_empty() || self.partitions == 0 {
            return "cells: none scanned\n".to_string();
        }
        let n = self.partitions as usize;
        // Downsample grids wider than 64 cells so rows stay terminal-sized.
        let scale = n.div_ceil(64);
        let side = n.div_ceil(scale);
        let project = |cell: &[u8], dim: usize| -> usize {
            (cell.get(dim).copied().unwrap_or(0) as usize / scale).min(side - 1)
        };
        let mut grid = vec![0u64; side * side];
        for (cell, agg) in &self.cells {
            let (r, c) = (project(cell, 0), project(cell, 1));
            grid[r * side + c] += agg.refined.count;
        }
        let max = grid.iter().copied().max().unwrap_or(0);
        let ramp: &[u8] = b" .:-=+*#%@";
        let mut out = format!(
            "cells: {} distinct; refined-count heatmap over dims 0x1 ({side}x{side}, scale {scale}):\n",
            self.cells.len()
        );
        for r in 0..side {
            out.push_str("  |");
            for c in 0..side {
                let v = grid[r * side + c];
                let idx = if max == 0 {
                    0
                } else {
                    ((v as u128 * (ramp.len() - 1) as u128) / max as u128) as usize
                };
                out.push(ramp[idx] as char);
            }
            out.push_str("|\n");
        }
        out
    }
}

/// The first point where two [`ExplainDoc`]s disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which section diverged: `"header"`, `"results"`, `"funnel"`,
    /// `"cell"` or `"timeline"`.
    pub section: &'static str,
    /// The diverging key within the section (field name, dotted cell key,
    /// or `[index]`).
    pub key: String,
    /// Rendering of the left document's value.
    pub a: String,
    /// Rendering of the right document's value.
    pub b: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence at {} {}: {} != {}",
            self.section, self.key, self.a, self.b
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> ExplainDoc {
        let mut doc = ExplainDoc::new();
        doc.set_engine("GIR");
        doc.push_config("mode", "seq");
        doc.begin_query(ExplainKind::Rkr, &[0.25, 0.5], 3, 8);
        doc.weight(0);
        doc.classify(&[1, 2], ExplainClass::Precedes, 0.1, 0.2);
        doc.classify(&[1, 2], ExplainClass::Refined, 0.2, 0.4);
        doc.classify(&[7, 0], ExplainClass::Succeeds, 0.9, 1.1);
        doc.domin_skip(&[1, 2]);
        doc.domin_insert(&[1, 2]);
        doc.weight(1);
        doc.early_termination();
        doc.bound_event(BoundSource::LocalScan, 0, 5, false);
        doc.bound_event(BoundSource::EpochExchange, 1, 4, false);
        doc.result(0, 5);
        doc
    }

    #[test]
    fn json_round_trip_is_exact() {
        let doc = sample_doc();
        let text = doc.to_pretty();
        let back = ExplainDoc::parse(&text).expect("parse back");
        assert_eq!(back, doc);
        // Serialisation is deterministic: byte-identical on re-export.
        assert_eq!(back.to_pretty(), text);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut j = sample_doc().to_json();
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "schema" {
                    *v = Json::UInt(99);
                }
            }
        }
        let err = ExplainDoc::from_json(&j).unwrap_err();
        assert!(err.contains("schema 99"), "got {err}");
    }

    #[test]
    fn funnel_reconciles_against_matching_counters() {
        let doc = sample_doc();
        let counters = [
            ("multiplications", 17u64),
            ("weights_visited", 2),
            ("points_visited", 3),
            ("filtered_case1", 1),
            ("filtered_case2", 1),
            ("refined", 1),
            ("domin_skips", 1),
            ("early_terminations", 1),
            ("threshold_hits", 0),
            ("tombstones_skipped", 0),
            ("appended_scanned", 0),
            ("threshold_rows_repaired", 0),
            ("epoch_published", 0),
        ];
        doc.funnel.reconcile(&counters).expect("reconciles");
        let mut bad = counters;
        bad[4].1 = 9; // filtered_case2
        let err = doc.funnel.reconcile(&bad).unwrap_err();
        assert!(err.contains("filtered_case2"), "got {err}");
        let missing = [("weights_visited", 2u64)];
        assert!(doc.funnel.reconcile(&missing).is_err());
    }

    #[test]
    fn funnel_internal_inconsistency_is_loud() {
        let mut doc = sample_doc();
        doc.funnel.scanned += 1;
        let err = doc.funnel.reconcile(&[]).unwrap_err();
        assert!(err.contains("funnel inconsistent"), "got {err}");
    }

    #[test]
    fn diff_reports_identical_docs_as_clean() {
        let doc = sample_doc();
        assert_eq!(doc.diff(&doc.clone(), false), None);
        assert!(doc.structural_eq(&doc.clone()));
    }

    #[test]
    fn diff_localizes_injected_cell_divergence() {
        let a = sample_doc();
        let mut b = a.clone();
        b.cells.get_mut(&vec![1, 2]).unwrap().refined.count += 1;
        // Funnel still matches, so the cell map is the first divergence.
        let div = a.diff(&b, false).expect("diverges");
        assert_eq!(div.section, "cell");
        assert_eq!(div.key, "1.2");
        assert!(div.a.contains("refined.count=1"), "got {div}");
        assert!(div.b.contains("refined.count=2"), "got {div}");
        // Structurally they still agree: header and results untouched.
        assert!(a.structural_eq(&b));
    }

    #[test]
    fn diff_orders_header_before_everything() {
        let a = sample_doc();
        let mut b = a.clone();
        b.k = 7;
        b.funnel.weights += 1; // would also diverge, but header wins
        let div = a.diff(&b, false).expect("diverges");
        assert_eq!((div.section, div.key.as_str()), ("header", "k"));
    }

    #[test]
    fn diff_catches_missing_cell_and_timeline_drift() {
        let a = sample_doc();
        let mut b = a.clone();
        b.cells.remove(&vec![7, 0]);
        let div = a.diff(&b, false).expect("diverges");
        assert_eq!((div.section, div.key.as_str()), ("cell", "7.0"));
        assert_eq!((div.a.as_str(), div.b.as_str()), ("present", "absent"));

        let mut c = a.clone();
        c.timeline[1].bound = 3;
        let div = a.diff(&c, false).expect("diverges");
        assert_eq!((div.section, div.key.as_str()), ("timeline", "[1]"));
        assert!(div.a.contains("epoch w1 bound 4"), "got {div}");
    }

    #[test]
    fn structural_diff_ignores_coverage_but_not_results() {
        let a = sample_doc();
        let mut b = a.clone();
        b.set_engine("ParGir");
        b.funnel.domin_skips += 5;
        b.cells.clear();
        b.timeline.clear();
        assert!(a.structural_eq(&b), "coverage is engine-specific");
        b.results[0].1 = 6;
        let div = a.diff(&b, true).expect("rank diverged");
        assert_eq!(div.section, "results");
        assert!(
            div.a.contains("rank 5") && div.b.contains("rank 6"),
            "{div}"
        );
    }

    #[test]
    fn absorb_merges_shards_in_order() {
        let mut main = ExplainDoc::new();
        main.begin_query(ExplainKind::Rtk, &[0.5], 2, 4);
        let mut s1 = ExplainDoc::new();
        s1.weight(0);
        s1.classify(&[1], ExplainClass::Precedes, 0.1, 0.3);
        s1.result(0, 0);
        let mut s2 = ExplainDoc::new();
        s2.weight(1);
        s2.classify(&[1], ExplainClass::Precedes, 0.2, 0.4);
        s2.domin_skip(&[2]);
        s2.bound_event(BoundSource::SharedAtomic, 1, 2, true);
        main.absorb(s1);
        main.absorb(s2);
        assert_eq!(main.funnel.weights, 2);
        assert_eq!(main.funnel.case1, 2);
        assert_eq!(main.funnel.domin_skips, 1);
        let cell = &main.cells[&vec![1u8]];
        assert_eq!(cell.case1.count, 2);
        // Last-absorbed shard's deciding bounds win.
        assert_eq!((cell.case1.lower, cell.case1.upper), (0.2, 0.4));
        assert_eq!(main.timeline.len(), 1);
        assert_eq!(main.results, vec![(0, 0)]);
    }

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        // Default methods are no-ops; just exercise them.
        sink.begin_query(ExplainKind::Rtk, &[0.1], 1, 4);
        sink.weight(0);
        sink.classify(&[0], ExplainClass::Refined, 0.0, 1.0);
        sink.domin_skip(&[0]);
        sink.domin_insert(&[0]);
        sink.early_termination();
        sink.bound_event(BoundSource::LocalScan, 0, 1, false);
        sink.result(0, 0);
        sink.absorb(NoopSink);
    }

    #[test]
    fn render_smoke_contains_funnel_and_heatmap() {
        let doc = sample_doc();
        let text = doc.render();
        assert!(text.contains("explain rkr k=3"), "{text}");
        assert!(text.contains("funnel"), "{text}");
        assert!(text.contains("case1 (precede)"), "{text}");
        assert!(text.contains("heatmap"), "{text}");
        assert!(text.contains("timeline: 2 events (local=1, shared=0, epoch=1)"));
        // Empty doc renders without panicking.
        assert!(ExplainDoc::new().render().contains("cells: none scanned"));
    }

    #[test]
    fn cell_keys_round_trip() {
        for cell in [vec![], vec![0u8], vec![3, 1, 4], vec![255, 0, 255]] {
            assert_eq!(parse_cell_key(&cell_key(&cell)).unwrap(), cell);
        }
        assert!(parse_cell_key("1.x.2").is_err());
        assert!(parse_cell_key("300").is_err());
    }
}
