//! Minimal JSON document model: hand-rolled serializer and parser.
//!
//! The build sandbox is offline, so `serde_json` is not an option; the
//! exporters need only a small well-formed subset. The parser exists so
//! round-trips can be tested and so consumers (tests, tooling) can
//! validate emitted `BENCH_*.json` files without external crates.
//!
//! Integers are a first-class variant ([`Json::UInt`]) because counter
//! values (multiplications, nanoseconds) must survive exactly; floats are
//! emitted with enough precision to round-trip `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (serialised without decimal point).
    UInt(u64),
    /// Double-precision number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements (`None` for non-arrays).
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object members in document order (`None` for non-objects).
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert; `None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned integer value (`None` for anything else, including floats
    /// with a fractional part).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, true, &mut out);
        out.push('\n');
        out
    }

    /// Serialises compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, false, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{:?}` is Rust's shortest round-trippable f64 formatting.
        let s = format!("{n:?}");
        out.push_str(&s);
    } else {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    }
}

fn write_value(v: &Json, indent: usize, pretty: bool, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                write_value(item, indent + 1, pretty, out);
            }
            pad(indent, out);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                write_escaped(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, indent + 1, pretty, out);
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

/// Parses a JSON document. Returns a readable error with byte position on
/// malformed input. Accepts exactly the subset the serializer emits plus
/// standard whitespace and `\uXXXX` escapes (surrogate pairs included).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] at byte {}: {other:?}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                // Duplicate keys silently shadow each other in most
                // parsers; for metrics documents that means a counter
                // diff could read the wrong value. Reject outright.
                return Err(format!("duplicate key `{key}` at byte {key_pos}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected , or }} at byte {}: {other:?}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code).ok_or("invalid surrogate pair")?
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    // rrq-lint: allow(no-unwrap-in-lib) -- the Some(_) arm guarantees at least one byte remains
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !is_float && !s.starts_with('-') {
            if let Ok(u) = s.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{s}`: {e}"))
    }
}

/// Convenience: parses an object into a key → value map (top level only).
pub fn to_map(v: &Json) -> Option<BTreeMap<String, Json>> {
    match v {
        Json::Obj(pairs) => Some(pairs.iter().cloned().collect()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let pretty = v.to_pretty();
        let compact = v.to_compact();
        assert_eq!(&parse(&pretty).unwrap(), v, "pretty: {pretty}");
        assert_eq!(&parse(&compact).unwrap(), v, "compact: {compact}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Json::Null);
        round_trip(&Json::Bool(true));
        round_trip(&Json::Bool(false));
        round_trip(&Json::UInt(0));
        round_trip(&Json::UInt(u64::MAX));
        round_trip(&Json::Num(0.5));
        round_trip(&Json::Num(-1.25e-9));
        round_trip(&Json::Str(String::new()));
        round_trip(&Json::str("plain"));
    }

    #[test]
    fn escaping_round_trips() {
        round_trip(&Json::str("quote \" backslash \\ newline \n tab \t"));
        round_trip(&Json::str("control \u{1} \u{1f} unicode é 中 🚀"));
        round_trip(&Json::str("slash / stays"));
    }

    #[test]
    fn nesting_round_trips() {
        let v = Json::obj([
            ("experiment", Json::str("fig11")),
            (
                "runs",
                Json::Arr(vec![
                    Json::obj([
                        ("algorithm", Json::str("GIR")),
                        ("multiplications", Json::UInt(123_456_789_012_345)),
                        ("empty_arr", Json::Arr(vec![])),
                        ("empty_obj", Json::Obj(vec![])),
                    ]),
                    Json::Null,
                ]),
            ),
            ("nested", Json::Arr(vec![Json::Arr(vec![Json::UInt(1)])])),
        ]);
        round_trip(&v);
    }

    #[test]
    fn integers_survive_exactly() {
        // 2^53 + 1 is not representable in f64; the UInt variant must
        // carry it through unharmed.
        let big = (1u64 << 53) + 1;
        let v = Json::obj([("n", Json::UInt(big))]);
        let parsed = parse(&v.to_compact()).unwrap();
        assert_eq!(parsed.get("n").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""aéb""#).unwrap(), Json::str("aéb"), "BMP escape");
        assert_eq!(parse(r#""🚀""#).unwrap(), Json::str("🚀"), "surrogate pair");
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"x",
            "[1] extra",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for bad in [
            "{} {}",
            "{\"a\":1}x",
            "[1]2",
            "1 1",
            "null,",
            "true\u{0}",
            "{\"a\":1}\n\n[",
        ] {
            let err = parse(bad).expect_err(&format!("accepted {bad:?}"));
            assert!(
                err.contains("trailing") || err.contains("byte"),
                "unhelpful error for {bad:?}: {err}"
            );
        }
        // Trailing *whitespace* stays legal — the exporters emit a final
        // newline.
        assert!(parse("{\"a\": 1}\n\t ").is_ok());
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        for bad in [
            r#"{"a":1,"a":2}"#,
            r#"{"a":1,"b":{"x":1,"x":2}}"#,
            r#"[{"k":null,"k":null}]"#,
        ] {
            let err = parse(bad).expect_err(&format!("accepted {bad:?}"));
            assert!(err.contains("duplicate key"), "wrong error: {err}");
        }
        // Same key at *different* nesting levels is fine.
        assert!(parse(r#"{"a":{"a":1},"b":{"a":2}}"#).is_ok());
    }

    #[test]
    fn non_finite_degrades_to_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn accessors() {
        let v = Json::obj([
            ("s", Json::str("x")),
            ("n", Json::UInt(7)),
            ("f", Json::Num(1.5)),
            ("a", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
        ]);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("a").unwrap().items().unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
        assert!(to_map(&v).unwrap().contains_key("a"));
        assert_eq!(to_map(&Json::Null), None);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::obj([("a", Json::Arr(vec![Json::UInt(1)]))]);
        let pretty = v.to_pretty();
        assert!(
            pretty.contains("{\n  \"a\": [\n    1\n  ]\n}\n"),
            "{pretty}"
        );
    }
}
