//! Pins the flight recorder's zero-allocation hot path under the
//! `alloc-track` feature: with [`rrq_obs::alloc::TrackingAlloc`]
//! installed as the global allocator, `FlightRecorder::record` must not
//! change the allocation-call count. (`noop_alloc.rs` pins the same
//! property with its own counting allocator so it also runs without the
//! feature; this test is the acceptance gate's `alloc-track` variant.)
#![cfg(feature = "alloc-track")]

use rrq_obs::alloc::{snapshot, TrackingAlloc};
use rrq_obs::{FlightRecord, FlightRecorder, QueryKind};

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

#[test]
fn flight_recorder_capture_adds_zero_heap_allocations() {
    assert!(
        rrq_obs::alloc::is_active(),
        "tracking allocator must be installed for this test to mean anything"
    );
    let ring = FlightRecorder::new(512);
    // Warm-up: construction allocates the slots; the first record must
    // already be free, but let one through anyway before measuring so
    // lazily initialised runtime structures don't pollute the window.
    ring.record(FlightRecord::default());

    let before = snapshot();
    for i in 0..100_000u64 {
        ring.record(FlightRecord {
            kind: if i % 3 == 0 {
                QueryKind::Rkr
            } else {
                QueryKind::Rtk
            },
            cell: (i % 1024) as u32,
            k: 40,
            start_ns: i,
            total_ns: 10_000 + i % 500,
            multiplications: i * 7,
            results: i % 11,
            ..FlightRecord::default()
        });
    }
    let after = snapshot();
    assert_eq!(
        after.alloc_calls - before.alloc_calls,
        0,
        "ring capture made {} allocation calls ({} bytes)",
        after.alloc_calls - before.alloc_calls,
        after.total_bytes - before.total_bytes,
    );
    assert_eq!(ring.recorded(), 100_001);
    // The wrap-around also stayed free: capacity 512 << 100k records.
    assert_eq!(ring.snapshot().len(), 512);
}
