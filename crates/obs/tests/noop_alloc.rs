//! Proves the `NoopRecorder` path allocates nothing: instrumentation on
//! untraced queries must be free, and "free" includes the heap. The
//! flight-recorder hot path (`FlightRecorder::record`) is pinned to the
//! same standard here; `ring_alloc.rs` re-pins it through the
//! `alloc-track` feature's own counting allocator.

use rrq_obs::{span, timed_leaf, FlightRecord, FlightRecorder, NoopRecorder, QueryKind, Recorder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System`, which upholds the
// `GlobalAlloc` contract; the extra work is one atomic increment.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ORDERING: Relaxed — a monotone tally with no other shared
        // state to order against; the tests read it from the same
        // thread that allocated.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    // SAFETY: delegates to `System.dealloc` with the caller's pointer
    // and layout unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    // ORDERING: Relaxed — same-thread read of the tally above.
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn noop_path_is_allocation_free() {
    let rec = NoopRecorder;
    // Warm anything lazy (e.g. test-harness buffers) before measuring.
    let warm = {
        let _g = span(&rec, "warmup");
        timed_leaf(&rec, "leaf", || 1u64)
    };
    assert_eq!(warm, 1);

    let before = allocations();
    let mut acc = 0u64;
    for i in 0..10_000u64 {
        let _q = span(&rec, "query");
        {
            let _f = span(&rec, "filter");
            acc = acc.wrapping_add(timed_leaf(&rec, "refine", || i * 3));
            rec.add_ns("dot", i);
        }
        rec.add_count("pairs", 1);
    }
    let after = allocations();
    assert!(std::hint::black_box(acc) > 0);
    assert_eq!(
        after - before,
        0,
        "NoopRecorder instrumentation allocated {} times",
        after - before
    );
}

#[test]
fn flight_recorder_capture_is_allocation_free() {
    // The ring's storage is fixed at construction; depositing a record
    // afterwards is a mutex lock plus a `Copy` — the query hot path must
    // not pay a heap allocation for its own black box.
    let ring = FlightRecorder::new(256);
    // Warm: first record plus anything lazy in the harness.
    ring.record(FlightRecord::default());

    let before = allocations();
    for i in 0..10_000u64 {
        ring.record(FlightRecord {
            kind: if i % 2 == 0 {
                QueryKind::Rtk
            } else {
                QueryKind::Rkr
            },
            cell: (i % 97) as u32,
            k: 10,
            start_ns: i * 1000,
            total_ns: 1000 + i,
            multiplications: i * 3,
            results: i % 7,
            ..FlightRecord::default()
        });
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "flight-recorder capture allocated {} times",
        after - before
    );
    assert_eq!(ring.recorded(), 10_001);
}

#[test]
fn dyn_noop_path_is_allocation_free() {
    // The algorithms receive `&dyn Recorder` at trait-object boundaries;
    // the no-op discipline must hold there too (enabled() gates clock
    // reads even when the call itself is virtual).
    let rec: &dyn Recorder = &NoopRecorder;
    let warm = {
        let _g = span(&rec, "warmup");
        0u64
    };
    assert_eq!(warm, 0);

    let before = allocations();
    for i in 0..10_000u64 {
        let _q = span(&rec, "query");
        rec.add_ns("dot", i);
        rec.add_count("pairs", 1);
    }
    let after = allocations();
    assert_eq!(after - before, 0, "dyn no-op path allocated");
}
