//! The central guarantee of the concurrent telemetry core: a workload
//! recorded by N threads into one [`SharedRecorder`] merges into exactly
//! the metrics a single thread records into a [`MetricsRecorder`] —
//! same counters, same phase tree shape and call counts, same histogram
//! distribution. Wall-times differ (different clocks, different
//! interleavings), so time fields are checked for consistency, not
//! equality.

use rrq_obs::{span, timed_leaf, MetricsRecorder, Recorder, SharedRecorder};
use std::collections::BTreeMap;

/// A deterministic instrumented "query": the same span/counter pattern
/// every algorithm's traced path produces, parameterised by query index
/// so different queries hit different branches.
fn run_query<R: Recorder + ?Sized>(rec: &R, i: u64) {
    let _q = span(rec, "query");
    {
        let _f = span(rec, "filter");
        rec.add_count("pairs_classified", 10 + i % 7);
        if i.is_multiple_of(3) {
            let _r = span(rec, "refine");
            rec.add_count("refined", i % 5);
            rec.add_ns("dot", 100 + i);
        }
    }
    {
        let _h = span(rec, "heap");
        timed_leaf(rec, "push", || i * 3);
    }
    rec.add_count("queries", 1);
}

/// Phase rows keyed by path → calls (times dropped: they are
/// wall-clock-dependent).
fn calls_by_path(phases: &[rrq_obs::PhaseStat]) -> BTreeMap<String, u64> {
    phases.iter().map(|p| (p.path.clone(), p.calls)).collect()
}

const QUERIES: u64 = 4000;
const THREADS: u64 = 4;

#[test]
fn four_thread_run_merges_to_the_sequential_metrics() {
    // Sequential reference on the single-threaded recorder.
    let seq = MetricsRecorder::new();
    let mut seq_hist = rrq_obs::LogHistogram::new();
    for i in 0..QUERIES {
        run_query(&seq, i);
        seq_hist.record(1000 + (i * i) % 90_000);
    }

    // The same workload, striped across 4 threads sharing one recorder.
    let shared = SharedRecorder::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shared = &shared;
            s.spawn(move || {
                let mut i = t;
                while i < QUERIES {
                    run_query(shared, i);
                    shared.record_value("latency", 1000 + (i * i) % 90_000);
                    i += THREADS;
                }
            });
        }
    });

    // Counters: identical, not merely close.
    assert_eq!(
        shared.counters(),
        seq.counters(),
        "merged counters must equal the sequential run"
    );

    // Phase tree: same paths, same call counts.
    assert_eq!(
        calls_by_path(&shared.phases()),
        calls_by_path(&seq.phases())
    );
    assert_eq!(shared.shard_count(), THREADS as usize);

    // Histogram: same count and identical quantiles (bucket counts add
    // exactly under merge).
    let merged = shared.histogram("latency").expect("recorded");
    assert_eq!(merged.count(), seq_hist.count());
    assert_eq!(merged.min(), seq_hist.min());
    assert_eq!(merged.max(), seq_hist.max());
    for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(merged.quantile(q), seq_hist.quantile(q), "quantile {q}");
    }

    // Time consistency on the merged tree: children within parents.
    let phases = shared.phases();
    for parent in phases.iter().filter(|p| p.depth == 0) {
        let child_sum: u64 = phases
            .iter()
            .filter(|c| c.depth == 1 && c.path.starts_with(&format!("{}/", parent.path)))
            .map(|c| c.total_ns)
            .sum();
        assert!(
            child_sum <= parent.total_ns,
            "{}: children {child_sum} ns exceed parent {} ns",
            parent.path,
            parent.total_ns
        );
    }
}

#[test]
fn snapshot_during_recording_is_consistent() {
    // Snapshots taken while workers are mid-flight must never observe a
    // torn tree (e.g. calls on a child without its parent existing) or
    // panic; final state still matches the expected totals.
    let shared = SharedRecorder::new();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let shared = &shared;
            s.spawn(move || {
                for i in 0..2000 {
                    run_query(shared, t * 2000 + i);
                }
            });
        }
        for _ in 0..50 {
            let phases = shared.phases();
            for p in &phases {
                assert!(!p.path.is_empty());
            }
            let _ = shared.counters();
        }
    });
    assert_eq!(shared.counter("queries"), Some(8000));
}
