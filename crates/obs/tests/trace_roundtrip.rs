//! Round-trips `SharedRecorder` span trees through Perfetto
//! `trace_event` JSON: export with `TraceBuilder`, serialise, re-parse
//! with the in-workspace JSON parser, reconstruct with
//! `span_tree_from_trace`, and require event nesting, thread ids and
//! duration sums to match the recorded trees exactly.

use rrq_obs::{span, span_tree_from_trace, Recorder, SharedRecorder, SpanTree, TraceBuilder};

/// Records a deterministic workload from several threads: each thread
/// shards privately inside the recorder, so `shard_trees()` yields one
/// tree per thread.
fn record_concurrent(threads: usize) -> SharedRecorder {
    let rec = SharedRecorder::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = &rec;
            s.spawn(move || {
                for i in 0..(t + 1) as u64 {
                    let _q = span(rec, "query");
                    {
                        let _f = span(rec, "filter");
                        rec.add_ns("refine", 10 * (i + 1));
                    }
                    rec.add_count("queries", 1);
                }
            });
        }
    });
    rec
}

#[test]
fn shard_trees_round_trip_losslessly_per_thread() {
    let rec = record_concurrent(3);
    let shard_trees = rec.shard_trees();
    assert_eq!(shard_trees.len(), 3, "one tree per recording thread");

    let pid = 1u64;
    let mut tb = TraceBuilder::new();
    tb.add_process_name(pid, "trace-roundtrip");
    for (tid, tree) in shard_trees.iter().enumerate() {
        let tid = tid as u64;
        tb.add_thread_name(pid, tid, "worker");
        tb.add_span_tree(pid, tid, 0, tree);
    }

    // Serialise and re-parse with the workspace parser — the document a
    // viewer would receive, not the in-memory Json value.
    let text = tb.to_json().to_pretty();
    let doc = rrq_obs::json::parse(&text).expect("exported trace is valid JSON");

    for (tid, tree) in shard_trees.iter().enumerate() {
        let back = span_tree_from_trace(&doc, pid, tid as u64).expect("well-formed");
        assert_eq!(&back, tree, "thread {tid} reconstructs exactly");
        // Duration sums survive the trip exactly (ts microseconds are
        // lossy; args are not).
        assert_eq!(back.total_ns(), tree.total_ns());
        assert_eq!(back.flatten(), tree.flatten(), "paths, calls, self-times");
    }

    // Threads must not bleed into each other: an absent tid is empty.
    assert_eq!(
        span_tree_from_trace(&doc, pid, 99).expect("well-formed"),
        SpanTree::default()
    );
}

#[test]
fn merged_tree_round_trips_and_merge_commutes_with_export() {
    let rec = record_concurrent(4);
    let merged = rec.span_tree();
    assert!(merged.total_ns() > 0);

    // Export the merged tree on its own thread id.
    let mut tb = TraceBuilder::new();
    tb.add_span_tree(7, 7, 12_345, &merged);
    let doc = rrq_obs::json::parse(&tb.to_json().to_pretty()).expect("valid JSON");
    let back = span_tree_from_trace(&doc, 7, 7).expect("well-formed");
    assert_eq!(back, merged, "merged tree reconstructs exactly");

    // Merging the re-parsed shard trees equals the recorder's own merge:
    // export and merge commute.
    let mut tb2 = TraceBuilder::new();
    let shard_trees = rec.shard_trees();
    for (tid, tree) in shard_trees.iter().enumerate() {
        tb2.add_span_tree(1, tid as u64, 0, tree);
    }
    let doc2 = rrq_obs::json::parse(&tb2.to_json().to_pretty()).expect("valid JSON");
    let mut remerged = SpanTree::default();
    for tid in 0..shard_trees.len() {
        remerged.merge(&span_tree_from_trace(&doc2, 1, tid as u64).expect("ok"));
    }
    assert_eq!(remerged.total_ns(), merged.total_ns());
    assert_eq!(remerged.flatten().len(), merged.flatten().len());
}

#[test]
fn trace_document_shape_is_viewer_compatible() {
    // Perfetto needs `traceEvents` with ph/ts/pid/tid members and
    // microsecond timestamps; pin the shape so a refactor cannot
    // silently emit something viewers reject.
    let rec = record_concurrent(1);
    let mut tb = TraceBuilder::new();
    tb.add_span_tree(1, 0, 0, &rec.span_tree());
    let doc = tb.to_json();
    let events = doc.get("traceEvents").unwrap().items().unwrap();
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "B" | "E"), "span export uses B/E pairs");
        assert!(ev.get("ts").unwrap().as_f64().is_some(), "numeric ts");
        assert!(ev.get("pid").unwrap().as_u64().is_some());
        assert!(ev.get("tid").unwrap().as_u64().is_some());
        if ph == "B" {
            let args = ev.get("args").unwrap();
            assert!(args.get("total_ns").unwrap().as_u64().is_some());
            assert!(args.get("calls").unwrap().as_u64().is_some());
        }
    }
    // B and E balance per document.
    let b = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("B"))
        .count();
    let e = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
        .count();
    assert_eq!(b, e, "every B has its E");
}
