//! Seeded property tests for the observability primitives:
//!
//! 1. `LogHistogram::merge` is *exact*: for any sharding of a sample
//!    stream, merging the shard histograms yields the same percentiles
//!    (and count/min/max/mean) as one histogram over the pooled samples.
//! 2. Nested phase trees survive the JSON exporter/parser round trip
//!    bit-for-bit inside an `ExperimentMetrics` document.
//!
//! The sandbox is offline (no proptest); these are seeded loops over a
//! splitmix-style generator, the workspace convention since PR 1.

use rrq_obs::{span, AlgoMetrics, ExperimentMetrics, LogHistogram, MetricsRecorder, Recorder};

/// SplitMix64: tiny, seedable, good enough for coverage.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn merged_shard_percentiles_equal_pooled_histogram() {
    for seed in [1u64, 7, 42, 1234, 0xDEAD_BEEF] {
        let mut gen = Gen(seed);
        let shard_count = 2 + (gen.below(6) as usize); // 2..=7 shards
        let samples = 500 + gen.below(5000);

        let mut shards: Vec<LogHistogram> = (0..shard_count).map(|_| LogHistogram::new()).collect();
        let mut pooled = LogHistogram::new();
        for _ in 0..samples {
            // Mix magnitudes: ns-scale latencies up to tens of seconds,
            // plus a dense low range to cover the exact linear buckets.
            let v = match gen.below(4) {
                0 => gen.below(64),
                1 => gen.below(100_000),
                2 => gen.below(50_000_000),
                _ => gen.below(40_000_000_000),
            };
            let shard = gen.below(shard_count as u64) as usize;
            shards[shard].record(v);
            pooled.record(v);
        }

        let mut merged = LogHistogram::new();
        for s in &shards {
            merged.merge(s);
        }

        assert_eq!(merged.count(), pooled.count(), "seed {seed}");
        assert_eq!(merged.min(), pooled.min(), "seed {seed}");
        assert_eq!(merged.max(), pooled.max(), "seed {seed}");
        assert_eq!(merged.mean(), pooled.mean(), "seed {seed}");
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert_eq!(
                merged.quantile(q),
                pooled.quantile(q),
                "seed {seed}, quantile {q}"
            );
        }
        let (ms, ps) = (merged.summary(), pooled.summary());
        assert_eq!(ms, ps, "seed {seed}: summaries diverge");
    }
}

/// Drives a recorder through a random (but seeded) pattern of nested
/// spans, leaf timings and counters, up to `depth` levels deep.
fn random_spans<R: Recorder + ?Sized>(rec: &R, gen: &mut Gen, depth: usize) {
    const NAMES: [&str; 6] = ["query", "filter", "refine", "heap", "quantize", "scan"];
    let children = gen.below(4);
    for _ in 0..children {
        let name = NAMES[gen.below(NAMES.len() as u64) as usize];
        match gen.below(3) {
            0 if depth > 0 => {
                let _g = span(rec, name);
                random_spans(rec, gen, depth - 1);
            }
            1 => rec.add_ns(name, gen.below(1_000_000)),
            _ => rec.add_count(name, gen.below(100)),
        }
    }
}

#[test]
fn nested_phase_trees_round_trip_through_json() {
    for seed in [3u64, 99, 2024, 0xC0_FF_EE] {
        let mut gen = Gen(seed);
        let rec = MetricsRecorder::new();
        for _ in 0..20 {
            random_spans(&rec, &mut gen, 4);
        }
        let phases = rec.phases();
        assert!(!phases.is_empty(), "seed {seed} generated no phases");

        let mut exp = ExperimentMetrics::new("prop");
        exp.config_pair("seed", seed);
        exp.push(AlgoMetrics {
            algorithm: "GIR".into(),
            query_kind: "rtk".into(),
            label: format!("seed={seed}"),
            queries: 20,
            mean_ms: 0.5,
            counters: rec.counters(),
            latency: None,
            phases: phases.clone(),
        });

        let text = exp.to_json().to_pretty();
        let back =
            ExperimentMetrics::from_json_text(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, exp, "seed {seed}: document did not round-trip");
        assert_eq!(
            back.runs[0].phases, phases,
            "seed {seed}: phase rows (paths, depths, calls, times) must survive exactly"
        );
    }
}
