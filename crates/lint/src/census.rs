//! Counter census: every `QueryStats` field must be booked at every
//! enumeration site. The struct's field list (from [`crate::index`]) is
//! the source of truth; the census verifies each field appears in the
//! `merge` destructure, the `counters()` export, and the explain
//! `Funnel::reconcile` cross-check — or in the documented
//! [`FUNNEL_EXEMPT`] list for counters the funnel deliberately does not
//! mirror. A new counter (like PR 8's 13th, `threshold_hits`) can no
//! longer silently skip a booking site; deleting a field from any site
//! names that site in the diagnostic.

use crate::index::FileIndex;
use crate::rules::{find_token, RawDiag, Rule};
use crate::SourceFile;
use std::collections::BTreeSet;

/// Where `QueryStats` lives.
pub const METRICS_PATH: &str = "crates/types/src/metrics.rs";

/// Where `Funnel::reconcile` lives.
pub const EXPLAIN_PATH: &str = "crates/obs/src/explain.rs";

/// `QueryStats` fields the explain funnel deliberately does not mirror:
/// arithmetic work meters and traversal counters with no funnel stage.
/// An exempt field that *is* mirrored, or an exempt name that is not a
/// field, is itself a census error — the list cannot rot either way.
pub const FUNNEL_EXEMPT: [&str; 5] = [
    "multiplications",
    "bound_additions",
    "nodes_visited",
    "leaf_accesses",
    "buckets_visited",
];

/// Runs the census over the analyzed file set. A no-op when the metrics
/// file is absent (fixture sets exercise it with virtual paths).
pub fn check_census(files: &[SourceFile], indexes: &[FileIndex]) -> Vec<(String, RawDiag)> {
    let mut out = Vec::new();
    let Some(mi) = indexes.iter().position(|f| f.path == METRICS_PATH) else {
        return out;
    };
    let metrics = &files[mi];
    let Some(stats) = indexes[mi].structs.iter().find(|s| s.name == "QueryStats") else {
        out.push((
            METRICS_PATH.to_string(),
            RawDiag {
                rule: Rule::CounterCensus,
                line: 1,
                message: format!("expected struct QueryStats in {METRICS_PATH}; census cannot run"),
            },
        ));
        return out;
    };

    // Enumeration sites inside the metrics file itself: the `merge`
    // destructure and the `counters()` export.
    for site in ["merge", "counters"] {
        let Some(f) = indexes[mi]
            .fns
            .iter()
            .find(|f| f.name == site && f.self_type.as_deref() == Some("QueryStats"))
        else {
            out.push((
                METRICS_PATH.to_string(),
                RawDiag {
                    rule: Rule::CounterCensus,
                    line: stats.line,
                    message: format!(
                        "QueryStats has no fn `{site}`; the census cannot verify that \
                         every counter is booked there"
                    ),
                },
            ));
            continue;
        };
        for (field, fline) in &stats.fields {
            let present = (f.line..=f.body_end.min(metrics.view.len()))
                .any(|n| find_token(&metrics.view.line(n).code, field, 0).is_some());
            if !present {
                out.push((
                    METRICS_PATH.to_string(),
                    RawDiag {
                        rule: Rule::CounterCensus,
                        line: f.line,
                        message: format!(
                            "QueryStats field `{field}` (declared at {METRICS_PATH}:{fline}) \
                             is missing from `{site}` — every counter must be booked at \
                             every enumeration site"
                        ),
                    },
                ));
            }
        }
    }

    // The explain cross-check: `Funnel::reconcile` mirrors counters by
    // their string names, so the census reads the raw source (the code
    // view blanks string literals).
    let Some(ei) = indexes.iter().position(|f| f.path == EXPLAIN_PATH) else {
        return out;
    };
    let Some(f) = indexes[ei]
        .fns
        .iter()
        .find(|f| f.name == "reconcile" && f.self_type.as_deref() == Some("Funnel"))
    else {
        out.push((
            EXPLAIN_PATH.to_string(),
            RawDiag {
                rule: Rule::CounterCensus,
                line: 1,
                message: format!(
                    "expected fn Funnel::reconcile in {EXPLAIN_PATH}; the census cannot \
                     verify the explain cross-check"
                ),
            },
        ));
        return out;
    };
    let lines: Vec<&str> = files[ei].source.lines().collect();
    let mut mirrored: BTreeSet<String> = BTreeSet::new();
    for n in f.line..=f.body_end.min(lines.len()) {
        collect_quoted_idents(lines[n - 1], &mut mirrored);
    }
    for (field, fline) in &stats.fields {
        let exempt = FUNNEL_EXEMPT.contains(&field.as_str());
        let is_mirrored = mirrored.contains(field.as_str());
        if exempt && is_mirrored {
            out.push((
                EXPLAIN_PATH.to_string(),
                RawDiag {
                    rule: Rule::CounterCensus,
                    line: f.line,
                    message: format!(
                        "QueryStats field `{field}` is in census::FUNNEL_EXEMPT but \
                         Funnel::reconcile mirrors it — remove the stale exemption"
                    ),
                },
            ));
        } else if !exempt && !is_mirrored {
            out.push((
                EXPLAIN_PATH.to_string(),
                RawDiag {
                    rule: Rule::CounterCensus,
                    line: f.line,
                    message: format!(
                        "QueryStats field `{field}` (declared at {METRICS_PATH}:{fline}) is \
                         missing from the Funnel::reconcile cross-check — mirror it or add \
                         it to census::FUNNEL_EXEMPT with a reason"
                    ),
                },
            ));
        }
    }
    for name in FUNNEL_EXEMPT {
        if !stats.fields.iter().any(|(f2, _)| f2 == name) {
            out.push((
                METRICS_PATH.to_string(),
                RawDiag {
                    rule: Rule::CounterCensus,
                    line: stats.line,
                    message: format!(
                        "census::FUNNEL_EXEMPT names `{name}`, which is not a QueryStats \
                         field — remove the stale entry"
                    ),
                },
            ));
        }
    }
    out
}

/// Collects identifier-shaped `"…"` contents from a raw source line
/// (odd segments of a quote split; precise enough for rustfmt'd code).
fn collect_quoted_idents(line: &str, out: &mut BTreeSet<String>) {
    for (i, seg) in line.split('"').enumerate() {
        if i % 2 == 1
            && !seg.is_empty()
            && seg.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            out.insert(seg.to_string());
        }
    }
}
