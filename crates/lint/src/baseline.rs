//! Suppression baseline: a committed file of known findings that the
//! gate tolerates while they are being burned down. Each line is
//!
//! ```text
//! <rule> @ <path> -- <reason>
//! ```
//!
//! (`#` comments and blank lines ignored). A diagnostic whose rule and
//! path match an entry is suppressed and counted; an entry that matches
//! *no* diagnostic is itself an error — the baseline must shrink with
//! the findings it excuses, exactly like inline suppressions.

use crate::rules::Rule;
use crate::{Diagnostic, Report, SUPPRESSION_RULE};

/// Pseudo-rule name for baseline problems (stale entries).
pub const BASELINE_RULE: &str = "baseline";

/// One parsed baseline entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule name the entry excuses.
    pub rule: String,
    /// Workspace-relative path the entry excuses.
    pub path: String,
    /// Why the finding is tolerated.
    pub reason: String,
    /// 1-indexed line in the baseline file.
    pub line: usize,
}

/// A parsed suppression baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses baseline text. Malformed lines and unknown rule names are
    /// hard errors (exit 2 territory): a baseline that cannot be parsed
    /// must not silently excuse anything.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let n = i + 1;
            let Some((head, reason)) = line.split_once("--") else {
                return Err(format!(
                    "baseline line {n}: expected `<rule> @ <path> -- <reason>`, got `{line}`"
                ));
            };
            let Some((rule, path)) = head.split_once('@') else {
                return Err(format!(
                    "baseline line {n}: missing `@` between rule and path"
                ));
            };
            let (rule, path, reason) = (rule.trim(), path.trim(), reason.trim());
            let known = Rule::from_name(rule).is_some() || rule == SUPPRESSION_RULE;
            if !known {
                return Err(format!("baseline line {n}: unknown rule `{rule}`"));
            }
            if path.is_empty() {
                return Err(format!("baseline line {n}: empty path"));
            }
            if reason.is_empty() {
                return Err(format!("baseline line {n}: empty reason after `--`"));
            }
            entries.push(Entry {
                rule: rule.to_string(),
                path: path.to_string(),
                reason: reason.to_string(),
                line: n,
            });
        }
        // Catch copy-paste duplicates early.
        for (a, e) in entries.iter().enumerate() {
            if entries[..a]
                .iter()
                .any(|p| p.rule == e.rule && p.path == e.path)
            {
                return Err(format!(
                    "baseline line {}: duplicate entry `{} @ {}`",
                    e.line, e.rule, e.path
                ));
            }
        }
        Ok(Baseline { entries })
    }

    /// Applies the baseline to a report: matching diagnostics are
    /// removed and counted in `report.baseline_suppressed`; stale
    /// entries become [`BASELINE_RULE`] diagnostics anchored at the
    /// baseline file (`baseline_path` is only used for display).
    pub fn apply(&self, report: &mut Report, baseline_path: &str) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::with_capacity(report.diagnostics.len());
        for diag in report.diagnostics.drain(..) {
            let hit = self
                .entries
                .iter()
                .position(|e| e.rule == diag.rule && e.path == diag.path);
            match hit {
                Some(i) => {
                    used[i] = true;
                    report.baseline_suppressed += 1;
                }
                None => kept.push(diag),
            }
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if !used[i] {
                kept.push(Diagnostic {
                    rule: BASELINE_RULE,
                    path: baseline_path.to_string(),
                    line: entry.line,
                    message: format!(
                        "stale baseline entry `{} @ {}` ({}) matches no current finding — \
                         remove it",
                        entry.rule, entry.path, entry.reason
                    ),
                });
            }
        }
        kept.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        report.diagnostics = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(diags: Vec<(&'static str, &str)>) -> Report {
        Report {
            diagnostics: diags
                .into_iter()
                .map(|(rule, path)| Diagnostic {
                    rule,
                    path: path.to_string(),
                    line: 3,
                    message: "m".into(),
                })
                .collect(),
            files_scanned: 1,
            baseline_suppressed: 0,
        }
    }

    #[test]
    fn matching_entry_suppresses_and_counts() {
        let b = Baseline::parse(
            "# comment\nno-unwrap-in-lib @ crates/core/src/gir.rs -- burning down\n",
        )
        .unwrap();
        let mut r = report_with(vec![("no-unwrap-in-lib", "crates/core/src/gir.rs")]);
        b.apply(&mut r, "lint_baseline.txt");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.baseline_suppressed, 1);
    }

    #[test]
    fn stale_entry_is_an_error() {
        let b =
            Baseline::parse("no-unwrap-in-lib @ crates/core/src/gone.rs -- was here\n").unwrap();
        let mut r = report_with(vec![]);
        b.apply(&mut r, "lint_baseline.txt");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, BASELINE_RULE);
        assert!(r.diagnostics[0].message.contains("stale baseline entry"));
    }

    #[test]
    fn malformed_and_unknown_are_hard_errors() {
        assert!(Baseline::parse("not a baseline line\n").is_err());
        assert!(Baseline::parse("no-such-rule @ a.rs -- why\n").is_err());
        assert!(Baseline::parse("no-unwrap-in-lib @ a.rs --\n").is_err());
        assert!(
            Baseline::parse("no-unwrap-in-lib @ a.rs -- x\nno-unwrap-in-lib @ a.rs -- y\n")
                .is_err()
        );
    }
}
