//! A lightweight, line-oriented Rust lexer: just enough to separate
//! *code* from *comments* and to blank out string/char literal contents,
//! so rule matching never fires on a token that only appears inside a
//! doc comment, an error message, or a `"HashMap"` string.
//!
//! Deliberately not a parser — no `syn`, no token tree, no spans beyond
//! line numbers. The workspace is offline and the rules are line-local,
//! so a state machine over characters is the whole budget. Handled:
//! line (`//`, `///`, `//!`) and nested block (`/* */`) comments,
//! string / byte-string / raw-string literals (`"…"`, `b"…"`, `r#"…"#`,
//! `br##"…"##`), char and byte-char literals (including `'\''` and
//! `'"'`, which would otherwise desynchronise quote tracking), and
//! lifetimes (`'a`, which must *not* open a char literal).

/// One source line split into its code part and its comment part.
///
/// * `code` — the line with comments removed and every character inside
///   a string/char literal replaced by a space (delimiters kept, so
///   token adjacency is preserved and braces inside literals vanish).
/// * `comment` — the concatenated text of every comment on the line
///   (line-comment tail and/or block-comment content), without the
///   `//` / `/*` markers.
#[derive(Debug, Default, Clone)]
pub struct LineView {
    /// Comment-free, literal-blanked source text.
    pub code: String,
    /// Comment text carried by this line.
    pub comment: String,
}

/// The fully scanned file: one [`LineView`] per source line plus a
/// per-line flag marking `#[cfg(test)]` regions.
#[derive(Debug, Default)]
pub struct FileView {
    /// Per-line code/comment split, index 0 = line 1.
    pub lines: Vec<LineView>,
    /// `true` for every line that belongs to a `#[cfg(test)]` item
    /// (usually an inline `mod tests { … }` block).
    pub in_cfg_test: Vec<bool>,
}

impl FileView {
    /// 1-indexed accessor used by the rule checks.
    pub fn line(&self, number: usize) -> &LineView {
        &self.lines[number - 1]
    }

    /// Whether 1-indexed `number` is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, number: usize) -> bool {
        self.in_cfg_test[number - 1]
    }

    /// Number of lines scanned.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// `escaped` is true right after a backslash.
    Str {
        escaped: bool,
    },
    /// Number of `#` marks that close the raw string.
    RawStr(usize),
}

/// Scans `source` into per-line code/comment views.
pub fn scan(source: &str) -> FileView {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<LineView> = Vec::new();
    let mut cur = LineView::default();
    let mut state = State::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str { escaped: false };
                    i += 1;
                } else if c == 'b' && next == Some('"') {
                    cur.code.push_str("b\"");
                    state = State::Str { escaped: false };
                    i += 2;
                } else if let Some(hashes) = raw_string_at(&chars, i) {
                    // `r"…"`, `r#"…"#`, `br##"…"##` …: emit the prefix
                    // and opening quote, blank the contents.
                    let prefix_len = chars[i..].iter().take_while(|&&p| p != '"').count() + 1;
                    for &p in &chars[i..i + prefix_len] {
                        cur.code.push(p);
                    }
                    state = State::RawStr(hashes);
                    i += prefix_len;
                } else if c == '\'' {
                    i = consume_quote(&chars, i, &mut cur.code);
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    cur.code.push(' ');
                    state = State::Str { escaped: false };
                } else if c == '\\' {
                    cur.code.push(' ');
                    state = State::Str { escaped: true };
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                } else {
                    cur.code.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|h| chars.get(i + 1 + h) == Some(&'#')) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || lines.is_empty() {
        lines.push(cur);
    }

    let in_cfg_test = mark_cfg_test_regions(&lines);
    FileView { lines, in_cfg_test }
}

/// Detects a raw (byte) string opener at `i`; returns the number of
/// closing `#` marks, or `None` if this is not a raw string start.
fn raw_string_at(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Handles a `'` in code position: a char literal (`'x'`, `'\\''`,
/// `b'"'`) is blanked out wholesale; a lifetime (`'a`) keeps its quote
/// and lets the identifier flow through as code. Returns the index of
/// the next unconsumed character.
fn consume_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    debug_assert_eq!(chars.get(i), Some(&'\''));
    let next = chars.get(i + 1).copied();
    if next == Some('\\') {
        // Escaped char literal: scan (bounded) for the closing quote.
        let mut j = i + 2;
        // Skip the escaped character itself so `'\''` closes at i+3.
        if j < chars.len() {
            j += 1;
        }
        while j < chars.len() && j - i < 12 && chars[j] != '\'' && chars[j] != '\n' {
            j += 1;
        }
        if chars.get(j) == Some(&'\'') {
            code.push('\'');
            for _ in i + 1..j {
                code.push(' ');
            }
            code.push('\'');
            return j + 1;
        }
        // Malformed escape: emit the quote and move on.
        code.push('\'');
        return i + 1;
    }
    if next.is_some() && chars.get(i + 2) == Some(&'\'') {
        // Plain one-character literal `'x'` (covers `'"'` and `'{'`).
        code.push_str("'' ");
        return i + 3;
    }
    // Lifetime (or stray quote): keep it as code.
    code.push('\'');
    i + 1
}

/// Marks the lines belonging to `#[cfg(test)]` items by tracking brace
/// depth in the code view. Heuristic but robust for rustfmt-formatted
/// code: the attribute applies to the next non-attribute item; a braced
/// item spans until depth returns to its opening level.
fn mark_cfg_test_regions(lines: &[LineView]) -> Vec<bool> {
    let mut marks = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depth at which the current `#[cfg(test)]` item opened.
    let mut region_start: Option<i64> = None;
    // Saw `#[cfg(test)]`, waiting for the item it decorates.
    let mut pending_attr = false;
    // The pending item's header has begun but its `{` has not appeared.
    let mut awaiting_brace = false;

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if region_start.is_none() && (pending_attr || awaiting_brace) && !code.is_empty() {
            let is_attr = code.starts_with("#[");
            if awaiting_brace || !is_attr {
                marks[idx] = true;
                pending_attr = false;
                if code.contains('{') {
                    region_start = Some(depth);
                    awaiting_brace = false;
                } else if code.ends_with(';') {
                    // Item without a body (`use`, `type`, …): this line
                    // alone is the test item.
                    awaiting_brace = false;
                } else {
                    awaiting_brace = true;
                }
            }
        }
        if region_start.is_some() {
            marks[idx] = true;
        }
        for ch in line.code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(start) = region_start {
            if depth <= start {
                region_start = None;
            }
        }
        if line.code.contains("#[cfg(test)]") {
            pending_attr = true;
            marks[idx] = true;
        }
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_doc_comments() {
        let v = scan("let x = 1; // HashMap here\n/// HashMap doc\nlet y = 2;\n");
        assert!(!v.line(1).code.contains("HashMap"));
        assert!(v.line(1).comment.contains("HashMap"));
        assert!(v.line(2).code.trim().is_empty());
        assert!(v.line(2).comment.contains("HashMap doc"));
        assert!(v.line(3).code.contains("let y"));
    }

    #[test]
    fn strips_block_comments_with_nesting() {
        let v = scan("a /* one /* two */ still */ b\n");
        assert_eq!(v.line(1).code.replace(' ', ""), "ab");
        assert!(v.line(1).comment.contains("two"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let v = scan("code1 /* start\nunsafe HashMap\nend */ code2\n");
        assert!(v.line(1).code.contains("code1"));
        assert!(v.line(2).code.trim().is_empty());
        assert!(v.line(2).comment.contains("unsafe"));
        assert!(v.line(3).code.contains("code2"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let v = scan("let s = \"unsafe { HashMap }\"; let t = 1;\n");
        assert!(!v.line(1).code.contains("unsafe"));
        assert!(!v.line(1).code.contains('{'));
        assert!(v.line(1).code.contains("let t = 1;"));
    }

    #[test]
    fn handles_escaped_quote_in_string() {
        let v = scan("let s = \"a\\\"b\"; HashMap\n");
        assert!(v.line(1).code.contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let v = scan("let a = r#\"unsafe \" still\"#; let b = b\"unsafe\"; ok\n");
        assert!(!v.line(1).code.contains("unsafe"));
        assert!(v.line(1).code.contains("ok"));
    }

    #[test]
    fn char_literals_do_not_desync_quotes() {
        // `'"'` and `'\''` are the classic traps: a naive scanner opens
        // a string at the quote char and swallows the rest of the file.
        let v = scan("let q = '\"'; let e = '\\''; let b = b'\"'; HashMap\n");
        assert!(v.line(1).code.contains("HashMap"));
    }

    #[test]
    fn char_literal_braces_are_not_counted() {
        let v = scan("if c == '{' { depth += 1; }\n");
        let opens = v.line(1).code.matches('{').count();
        let closes = v.line(1).code.matches('}').count();
        assert_eq!((opens, closes), (1, 1));
    }

    #[test]
    fn lifetimes_are_left_alone() {
        let v = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(v.line(1).code.contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    use super::*;
    fn helper() { x.unwrap(); }
}
fn also_real() {}
";
        let v = scan(src);
        assert!(!v.is_test_line(1));
        assert!(v.is_test_line(2));
        assert!(v.is_test_line(3));
        assert!(v.is_test_line(5));
        assert!(v.is_test_line(6));
        assert!(!v.is_test_line(7));
    }

    #[test]
    fn cfg_test_with_intervening_attribute() {
        let src = "\
#[cfg(test)]
#[allow(missing_docs)]
mod tests {
    fn t() {}
}
fn real() {}
";
        let v = scan(src);
        assert!(v.is_test_line(3));
        assert!(v.is_test_line(5));
        assert!(!v.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_single_item_without_braces() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn real() {}\n";
        let v = scan(src);
        assert!(v.is_test_line(2));
        assert!(!v.is_test_line(3));
    }
}
