//! `rrq-lint`: a zero-dependency static-analysis pass enforcing the
//! workspace's determinism, unsafe-containment and counter-integrity
//! invariants (DESIGN.md §11).
//!
//! The paper's evaluation — and the `rrq-benchdiff` perf gate built on
//! it — only holds if same-seed runs are bit-deterministic. Two past
//! PRs fixed exactly that class of bug *after* the benchmark diff
//! caught it (MPA's `HashMap` iteration order, the blocked-scan
//! `QueryStats` divergence). This crate turns those hard-won runtime
//! invariants into named lint rules that fail the pre-PR gate instead:
//!
//! | rule | invariant |
//! |---|---|
//! | `no-hash-iteration` | no `HashMap`/`HashSet` in counter-affecting crates |
//! | `unsafe-containment` | `unsafe` rooted + `// SAFETY:`-commented |
//! | `atomic-ordering-justified` | `Ordering::*` rooted + `// ORDERING:`-commented |
//! | `no-wall-clock-in-counters` | clock reads confined to obs + timed sections |
//! | `no-thread-spawn-outside-par` | spawning confined to par.rs + runner striping |
//! | `no-unwrap-in-lib` | no undocumented panic sites in library code |
//! | `seqcst-justified` | `SeqCst` argued everywhere, tests included |
//!
//! Since v2 the per-file rules are backed by a workspace symbol graph
//! ([`index`] + [`graph`]): call-graph confinement walks from the query
//! entry points and flags any reachable wall-clock read, thread spawn
//! or unjustified atomic *with the full call chain*; the counter census
//! ([`census`]) verifies every `QueryStats` field is booked at every
//! enumeration site; `barrier-unwind-guard` checks each rendezvous sits
//! under a poison guard; and `whitelist-stale` turns rotting root
//! entries into errors. Findings can also be carried in a committed
//! [`baseline`] file, and reports render to SARIF 2.1.0 ([`sarif`]).
//!
//! False positives are silenced inline, reason mandatory:
//!
//! ```text
//! // rrq-lint: allow(no-unwrap-in-lib) -- poisoning means a worker panicked; propagate
//! ```
//!
//! A directive on its own comment line covers the next code line; a
//! trailing directive covers its own line. Directives that cover
//! nothing, name unknown rules, or omit the `-- reason` are themselves
//! errors — suppressions cannot rot silently.
//!
//! Scanning is a hand-rolled lexer ([`lexer`]) — line/token based, no
//! `syn`, fully offline like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod census;
pub mod fix;
pub mod graph;
pub mod index;
pub mod lexer;
pub mod rules;
pub mod sarif;

use rules::Rule;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Pseudo-rule name used for problems with suppression directives
/// themselves (malformed, unknown rule, unused).
pub const SUPPRESSION_RULE: &str = "suppression";

/// One reported problem, ready for human or JSON output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name ([`SUPPRESSION_RULE`] for directive problems).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-indexed source line.
    pub line: usize,
    /// Human-facing explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Result of linting a file tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Everything that fired, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings excused by an applied [`baseline::Baseline`].
    pub baseline_suppressed: usize,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

// ---------------------------------------------------------------------
// Suppression directives.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Directive {
    /// Line the directive comment sits on.
    line: usize,
    /// Line whose diagnostics it suppresses (`None`: nothing to cover).
    target: Option<usize>,
    rules: Vec<Rule>,
    used: bool,
}

const DIRECTIVE_MARKER: &str = "rrq-lint:";

/// Parses every `// rrq-lint: allow(…) -- reason` directive in the
/// file. Malformed directives become diagnostics immediately.
fn parse_directives(
    path: &str,
    view: &lexer::FileView,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Directive> {
    let mut out = Vec::new();
    for n in 1..=view.len() {
        // A directive must *start* the comment (`// rrq-lint: …`). Doc
        // comments yield text starting with `/` or `!`, so prose that
        // merely quotes the syntax never parses as a directive.
        let comment = view.line(n).comment.trim_start();
        let Some(rest) = comment.strip_prefix(DIRECTIVE_MARKER) else {
            continue;
        };
        let rest = rest.trim_start();
        let mut fail = |message: String| {
            diags.push(Diagnostic {
                rule: SUPPRESSION_RULE,
                path: path.to_string(),
                line: n,
                message,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            fail(format!(
                "malformed directive: expected `rrq-lint: allow(<rule>) -- <reason>`, got `{}`",
                rest.trim_end()
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            fail("malformed directive: missing `)` after rule list".to_string());
            continue;
        };
        let mut parsed = Vec::new();
        let mut bad = false;
        for name in args[..close].split(',') {
            let name = name.trim();
            match Rule::from_name(name) {
                Some(rule) => parsed.push(rule),
                None => {
                    fail(format!("unknown rule `{name}` in suppression"));
                    bad = true;
                }
            }
        }
        if bad {
            continue;
        }
        if parsed.is_empty() {
            fail("empty rule list in suppression".to_string());
            continue;
        }
        let after = args[close + 1..].trim_start();
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            fail("suppression needs a reason: `-- <why this site is sound>`".to_string());
            continue;
        }
        // Trailing directive covers its own line; a directive on a
        // comment-only line covers the next line holding code.
        let target = if !view.line(n).code.trim().is_empty() {
            Some(n)
        } else {
            (n + 1..=view.len()).find(|&m| !view.line(m).code.trim().is_empty())
        };
        out.push(Directive {
            line: n,
            target,
            rules: parsed,
            used: false,
        });
    }
    out
}

// ---------------------------------------------------------------------
// The analysis pipeline.
// ---------------------------------------------------------------------

/// One file flowing through the pipeline: raw source plus its lexed
/// view (the symbol index travels in a parallel slice).
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Raw source text.
    pub source: String,
    /// Lexed code/comment view.
    pub view: lexer::FileView,
}

/// Options for [`lint_sources`].
#[derive(Debug, Default, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Run the root-liveness audit (`whitelist-stale`). On for full
    /// workspace scans; off for fixture file sets, where every absent
    /// root file would read as stale.
    pub check_roots: bool,
}

/// Lints a set of in-memory sources as one workspace: per-file rules
/// first, then the cross-file graph and census rules, all matched
/// against the same inline suppression directives.
///
/// `deps` is the transitive Cargo crate-dependency map bounding call
/// resolution (`None` resolves permissively — fixture mode).
pub fn lint_sources(
    sources: Vec<(String, String)>,
    deps: Option<&graph::CrateDeps>,
    opts: AnalyzeOptions,
) -> Report {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut files: Vec<SourceFile> = Vec::new();
    let mut indexes: Vec<index::FileIndex> = Vec::new();
    for (path, source) in sources {
        let view = lexer::scan(&source);
        indexes.push(index::index_file(&path, &view));
        files.push(SourceFile { path, source, view });
    }
    let mut directives: Vec<Vec<Directive>> = files
        .iter()
        .map(|f| parse_directives(&f.path, &f.view, &mut diags))
        .collect();

    // Suppression matcher shared by the per-file and workspace passes.
    let emit = |file_idx: Option<usize>,
                path: &str,
                raw: rules::RawDiag,
                directives: &mut [Vec<Directive>],
                diags: &mut Vec<Diagnostic>| {
        let suppressed = file_idx.is_some_and(|i| {
            directives[i].iter_mut().any(|d| {
                let hit = d.target == Some(raw.line) && d.rules.contains(&raw.rule);
                if hit {
                    d.used = true;
                }
                hit
            })
        });
        if !suppressed {
            diags.push(Diagnostic {
                rule: raw.rule.name(),
                path: path.to_string(),
                line: raw.line,
                message: raw.message,
            });
        }
    };

    for (i, f) in files.iter().enumerate() {
        for raw in rules::check_file(&f.path, &f.view) {
            emit(Some(i), &f.path, raw, &mut directives, &mut diags);
        }
    }
    let mut workspace_diags = graph::check_graph(&indexes, deps, opts.check_roots);
    workspace_diags.extend(census::check_census(&files, &indexes));
    for (path, raw) in workspace_diags {
        let file_idx = files.iter().position(|f| f.path == path);
        emit(file_idx, &path, raw, &mut directives, &mut diags);
    }

    for (i, f) in files.iter().enumerate() {
        for d in directives[i].iter().filter(|d| !d.used) {
            diags.push(Diagnostic {
                rule: SUPPRESSION_RULE,
                path: f.path.clone(),
                line: d.line,
                message: format!(
                    "unused suppression for {}: nothing fires on the covered line — remove it",
                    d.rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Report {
        diagnostics: diags,
        files_scanned: files.len(),
        baseline_suppressed: 0,
    }
}

/// Lints one file's source text under its workspace-relative `path`,
/// running the full pipeline (per-file rules plus whatever workspace
/// rules the single-file set can trigger).
///
/// The path determines rule scopes (crate membership, test status), so
/// fixtures can exercise any scope by choosing a virtual path.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_sources(
        vec![(path.to_string(), source.to_string())],
        None,
        AnalyzeOptions::default(),
    )
    .diagnostics
}

// ---------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------

/// Directories scanned relative to the workspace root.
pub const SCAN_ROOTS: [&str; 3] = ["crates", "src", "tests"];

/// Path components that are never scanned: build output and the lint
/// fixtures (which violate the rules on purpose).
const SKIP_COMPONENTS: [&str; 2] = ["target", "fixtures"];

/// Collects every `.rs` file under the scan roots, as
/// `(relative, absolute)` pairs sorted by relative path — directory
/// iteration order is OS-dependent, and a determinism linter had better
/// report deterministically.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect_rs(&dir, scan, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let child_rel = format!("{rel}/{name}");
        if path.is_dir() {
            if !SKIP_COMPONENTS.contains(&name.as_str()) {
                collect_rs(&path, &child_rel, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push((child_rel, path));
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root`'s scan roots with the full
/// pipeline: Cargo-bounded call resolution and the root-liveness audit
/// are both on.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut sources = Vec::new();
    for (rel, abs) in workspace_files(root)? {
        let source =
            fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        sources.push((rel, source));
    }
    let deps = crate_deps(root)?;
    Ok(lint_sources(
        sources,
        Some(&deps),
        AnalyzeOptions { check_roots: true },
    ))
}

/// Parses every `crates/*/Cargo.toml` for intra-workspace `rrq-*`
/// dependencies (the `[dependencies]` section only — dev-deps must not
/// widen the non-test call universe) and closes transitively. Keys and
/// values are crate *dir* names (`core`, `obs`, …).
pub fn crate_deps(root: &Path) -> Result<graph::CrateDeps, String> {
    let mut deps = graph::CrateDeps::new();
    let crates_dir = root.join("crates");
    let entries =
        fs::read_dir(&crates_dir).map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
        let manifest = entry.path().join("Cargo.toml");
        let Some(name) = entry.file_name().to_str().map(String::from) else {
            continue;
        };
        if !manifest.is_file() {
            continue;
        }
        let text = fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        let mut in_deps = false;
        let mut set = BTreeSet::new();
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with('[') {
                in_deps = t == "[dependencies]";
            } else if in_deps {
                if let Some(rest) = t.strip_prefix("rrq-") {
                    let dep: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                        .collect();
                    if !dep.is_empty() {
                        set.insert(dep);
                    }
                }
            }
        }
        deps.insert(name, set);
    }
    // Transitive closure, to a fixpoint (the crate DAG is tiny).
    loop {
        let mut grew = false;
        let snapshot = deps.clone();
        for set in deps.values_mut() {
            let indirect: Vec<String> = set
                .iter()
                .filter_map(|d| snapshot.get(d))
                .flatten()
                .filter(|d| !set.contains(*d))
                .cloned()
                .collect();
            if !indirect.is_empty() {
                set.extend(indirect);
                grew = true;
            }
        }
        if !grew {
            return Ok(deps);
        }
    }
}

/// Walks upward from `start` to the first directory that looks like the
/// workspace root (has `Cargo.toml` and a `crates/` directory).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    for _ in 0..8 {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_directive_covers_its_own_line() {
        let src = "use std::collections::HashMap; // rrq-lint: allow(no-hash-iteration) -- test\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn standalone_directive_covers_next_code_line() {
        let src = "\
// rrq-lint: allow(no-hash-iteration) -- exercising the syntax
use std::collections::HashMap;
";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn directive_without_reason_is_an_error() {
        let src = "// rrq-lint: allow(no-hash-iteration)\nuse std::collections::HashMap;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.iter().any(|d| d.rule == SUPPRESSION_RULE));
        // The violation itself still fires: a reasonless directive
        // suppresses nothing.
        assert!(diags.iter().any(|d| d.rule == "no-hash-iteration"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// rrq-lint: allow(no-such-rule) -- whatever\nlet x = 1;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_directive_is_an_error() {
        let src = "// rrq-lint: allow(no-hash-iteration) -- stale\nlet x = 1;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unused suppression"));
    }

    #[test]
    fn clean_file_is_clean() {
        let src = "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n";
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }
}
