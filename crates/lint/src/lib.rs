//! `rrq-lint`: a zero-dependency static-analysis pass enforcing the
//! workspace's determinism, unsafe-containment and counter-integrity
//! invariants (DESIGN.md §11).
//!
//! The paper's evaluation — and the `rrq-benchdiff` perf gate built on
//! it — only holds if same-seed runs are bit-deterministic. Two past
//! PRs fixed exactly that class of bug *after* the benchmark diff
//! caught it (MPA's `HashMap` iteration order, the blocked-scan
//! `QueryStats` divergence). This crate turns those hard-won runtime
//! invariants into named lint rules that fail the pre-PR gate instead:
//!
//! | rule | invariant |
//! |---|---|
//! | `no-hash-iteration` | no `HashMap`/`HashSet` in counter-affecting crates |
//! | `unsafe-containment` | `unsafe` whitelisted + `// SAFETY:`-commented |
//! | `atomic-ordering-justified` | `Ordering::*` whitelisted + `// ORDERING:`-commented |
//! | `no-wall-clock-in-counters` | clock reads confined to obs + timed sections |
//! | `no-thread-spawn-outside-par` | spawning confined to par.rs + runner striping |
//! | `no-unwrap-in-lib` | no undocumented panic sites in library code |
//!
//! False positives are silenced inline, reason mandatory:
//!
//! ```text
//! // rrq-lint: allow(no-unwrap-in-lib) -- poisoning means a worker panicked; propagate
//! ```
//!
//! A directive on its own comment line covers the next code line; a
//! trailing directive covers its own line. Directives that cover
//! nothing, name unknown rules, or omit the `-- reason` are themselves
//! errors — suppressions cannot rot silently.
//!
//! Scanning is a hand-rolled lexer ([`lexer`]) — line/token based, no
//! `syn`, fully offline like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fix;
pub mod lexer;
pub mod rules;

use rules::Rule;
use std::fs;
use std::path::{Path, PathBuf};

/// Pseudo-rule name used for problems with suppression directives
/// themselves (malformed, unknown rule, unused).
pub const SUPPRESSION_RULE: &str = "suppression";

/// One reported problem, ready for human or JSON output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name ([`SUPPRESSION_RULE`] for directive problems).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-indexed source line.
    pub line: usize,
    /// Human-facing explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Result of linting a file tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Everything that fired, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

// ---------------------------------------------------------------------
// Suppression directives.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Directive {
    /// Line the directive comment sits on.
    line: usize,
    /// Line whose diagnostics it suppresses (`None`: nothing to cover).
    target: Option<usize>,
    rules: Vec<Rule>,
    used: bool,
}

const DIRECTIVE_MARKER: &str = "rrq-lint:";

/// Parses every `// rrq-lint: allow(…) -- reason` directive in the
/// file. Malformed directives become diagnostics immediately.
fn parse_directives(
    path: &str,
    view: &lexer::FileView,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Directive> {
    let mut out = Vec::new();
    for n in 1..=view.len() {
        // A directive must *start* the comment (`// rrq-lint: …`). Doc
        // comments yield text starting with `/` or `!`, so prose that
        // merely quotes the syntax never parses as a directive.
        let comment = view.line(n).comment.trim_start();
        let Some(rest) = comment.strip_prefix(DIRECTIVE_MARKER) else {
            continue;
        };
        let rest = rest.trim_start();
        let mut fail = |message: String| {
            diags.push(Diagnostic {
                rule: SUPPRESSION_RULE,
                path: path.to_string(),
                line: n,
                message,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            fail(format!(
                "malformed directive: expected `rrq-lint: allow(<rule>) -- <reason>`, got `{}`",
                rest.trim_end()
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            fail("malformed directive: missing `)` after rule list".to_string());
            continue;
        };
        let mut parsed = Vec::new();
        let mut bad = false;
        for name in args[..close].split(',') {
            let name = name.trim();
            match Rule::from_name(name) {
                Some(rule) => parsed.push(rule),
                None => {
                    fail(format!("unknown rule `{name}` in suppression"));
                    bad = true;
                }
            }
        }
        if bad {
            continue;
        }
        if parsed.is_empty() {
            fail("empty rule list in suppression".to_string());
            continue;
        }
        let after = args[close + 1..].trim_start();
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            fail("suppression needs a reason: `-- <why this site is sound>`".to_string());
            continue;
        }
        // Trailing directive covers its own line; a directive on a
        // comment-only line covers the next line holding code.
        let target = if !view.line(n).code.trim().is_empty() {
            Some(n)
        } else {
            (n + 1..=view.len()).find(|&m| !view.line(m).code.trim().is_empty())
        };
        out.push(Directive {
            line: n,
            target,
            rules: parsed,
            used: false,
        });
    }
    out
}

/// Lints one file's source text under its workspace-relative `path`.
///
/// The path determines rule scopes (crate membership, test status), so
/// fixtures can exercise any scope by choosing a virtual path.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let view = lexer::scan(source);
    let mut diags = Vec::new();
    let mut directives = parse_directives(path, &view, &mut diags);

    for raw in rules::check_file(path, &view) {
        let suppressed = directives.iter_mut().any(|d| {
            let hit = d.target == Some(raw.line) && d.rules.contains(&raw.rule);
            if hit {
                d.used = true;
            }
            hit
        });
        if !suppressed {
            diags.push(Diagnostic {
                rule: raw.rule.name(),
                path: path.to_string(),
                line: raw.line,
                message: raw.message,
            });
        }
    }
    for d in directives.iter().filter(|d| !d.used) {
        diags.push(Diagnostic {
            rule: SUPPRESSION_RULE,
            path: path.to_string(),
            line: d.line,
            message: format!(
                "unused suppression for {}: nothing fires on the covered line — remove it",
                d.rules
                    .iter()
                    .map(|r| r.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
    diags.sort_by_key(|d| d.line);
    diags
}

// ---------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------

/// Directories scanned relative to the workspace root.
pub const SCAN_ROOTS: [&str; 3] = ["crates", "src", "tests"];

/// Path components that are never scanned: build output and the lint
/// fixtures (which violate the rules on purpose).
const SKIP_COMPONENTS: [&str; 2] = ["target", "fixtures"];

/// Collects every `.rs` file under the scan roots, as
/// `(relative, absolute)` pairs sorted by relative path — directory
/// iteration order is OS-dependent, and a determinism linter had better
/// report deterministically.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect_rs(&dir, scan, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let child_rel = format!("{rel}/{name}");
        if path.is_dir() {
            if !SKIP_COMPONENTS.contains(&name.as_str()) {
                collect_rs(&path, &child_rel, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push((child_rel, path));
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root`'s scan roots.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    for (rel, abs) in workspace_files(root)? {
        let source =
            fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        report.diagnostics.extend(lint_source(&rel, &source));
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Walks upward from `start` to the first directory that looks like the
/// workspace root (has `Cargo.toml` and a `crates/` directory).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    for _ in 0..8 {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_directive_covers_its_own_line() {
        let src = "use std::collections::HashMap; // rrq-lint: allow(no-hash-iteration) -- test\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn standalone_directive_covers_next_code_line() {
        let src = "\
// rrq-lint: allow(no-hash-iteration) -- exercising the syntax
use std::collections::HashMap;
";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn directive_without_reason_is_an_error() {
        let src = "// rrq-lint: allow(no-hash-iteration)\nuse std::collections::HashMap;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.iter().any(|d| d.rule == SUPPRESSION_RULE));
        // The violation itself still fires: a reasonless directive
        // suppresses nothing.
        assert!(diags.iter().any(|d| d.rule == "no-hash-iteration"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// rrq-lint: allow(no-such-rule) -- whatever\nlet x = 1;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_directive_is_an_error() {
        let src = "// rrq-lint: allow(no-hash-iteration) -- stale\nlet x = 1;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unused suppression"));
    }

    #[test]
    fn clean_file_is_clean() {
        let src = "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n";
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }
}
