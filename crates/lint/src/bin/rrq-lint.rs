//! CLI for the workspace linter.
//!
//! ```text
//! rrq-lint [--root <dir>] [--json] [--baseline <file>] [--sarif <file>]
//!          [--fix-forbid] [--list-rules]
//! ```
//!
//! Exit codes mirror `rrq-benchdiff`: `0` clean, `1` diagnostics
//! reported, `2` usage or I/O error.

use rrq_lint::{
    baseline::Baseline, fix, lint_workspace, rules::ALL_RULES, sarif, Diagnostic, Report,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rrq-lint [options]

Lints every .rs file under the workspace's crates/, src/ and tests/
directories against the project invariants (DESIGN.md \u{a7}11): per-file
rules plus the call-graph confinement, counter-census, barrier-guard
and root-liveness workspace rules.

options:
  --root <dir>      workspace root (default: auto-detect upward from cwd)
  --json            machine-readable output for scripts/lint_gate.sh
  --baseline <file> apply a committed suppression baseline
                    (`<rule> @ <path> -- <reason>` per line); stale
                    entries are errors
  --sarif <file>    also write the report as SARIF 2.1.0
  --fix-forbid      insert missing #![forbid(unsafe_code)] crate-root
                    attributes before linting
  --list-rules      print the rule names and exit
  -h, --help        this message

exit codes: 0 clean, 1 diagnostics reported, 2 usage or I/O error";

struct Options {
    root: Option<PathBuf>,
    json: bool,
    baseline: Option<PathBuf>,
    sarif: Option<PathBuf>,
    fix_forbid: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        baseline: None,
        sarif: None,
        fix_forbid: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--fix-forbid" => opts.fix_forbid = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--baseline" => {
                let file = it.next().ok_or("--baseline needs a file argument")?;
                opts.baseline = Some(PathBuf::from(file));
            }
            "--sarif" => {
                let file = it.next().ok_or("--sarif needs a file argument")?;
                opts.sarif = Some(PathBuf::from(file));
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"error_count\": {},\n",
        report.diagnostics.len()
    ));
    out.push_str(&format!(
        "  \"baseline_suppressed\": {},\n",
        report.baseline_suppressed
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        out.push_str(&format!(
            "{sep}    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!("{d}\n"));
    }
    let baseline_note = if report.baseline_suppressed > 0 {
        format!(", {} baselined", report.baseline_suppressed)
    } else {
        String::new()
    };
    if report.is_clean() {
        out.push_str(&format!(
            "rrq-lint: clean ({} files, {} rules{baseline_note})\n",
            report.files_scanned,
            ALL_RULES.len()
        ));
    } else {
        out.push_str(&format!(
            "rrq-lint: {} error(s) in {} files{baseline_note}\n",
            report.diagnostics.len(),
            report.files_scanned
        ));
    }
    out
}

fn run() -> Result<Vec<Diagnostic>, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args).map_err(|e| {
        if e.is_empty() {
            format!("{USAGE}\n")
        } else {
            format!("error: {e}\n{USAGE}\n")
        }
    })?;

    if opts.list_rules {
        for rule in ALL_RULES {
            println!("{}", rule.name());
        }
        return Ok(Vec::new());
    }

    let root = match opts.root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("error: getcwd: {e}"))?;
            rrq_lint::find_workspace_root(&cwd).ok_or_else(|| {
                "error: no workspace root found (looked for Cargo.toml + crates/ \
                 upward from cwd); pass --root"
                    .to_string()
            })?
        }
    };

    if opts.fix_forbid {
        let fixed = fix::fix_workspace(&root).map_err(|e| format!("error: {e}"))?;
        for path in &fixed {
            eprintln!(
                "fixed: inserted #![forbid(unsafe_code)] into {}",
                path.display()
            );
        }
        if fixed.is_empty() {
            eprintln!("fix-forbid: nothing to fix");
        }
    }

    let mut report = lint_workspace(&root).map_err(|e| format!("error: {e}"))?;
    if let Some(baseline_path) = &opts.baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("error: read {}: {e}", baseline_path.display()))?;
        let baseline = Baseline::parse(&text).map_err(|e| format!("error: {e}"))?;
        baseline.apply(&mut report, &baseline_path.display().to_string());
    }
    if let Some(sarif_path) = &opts.sarif {
        std::fs::write(sarif_path, sarif::render(&report))
            .map_err(|e| format!("error: write {}: {e}", sarif_path.display()))?;
    }
    if opts.json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    Ok(report.diagnostics)
}

fn main() -> ExitCode {
    match run() {
        Ok(diags) if diags.is_empty() => ExitCode::from(0),
        Ok(_) => ExitCode::from(1),
        Err(msg) => {
            eprint!("{msg}");
            ExitCode::from(2)
        }
    }
}
