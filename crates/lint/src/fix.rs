//! `--fix-forbid`: mechanically inserts a missing
//! `#![forbid(unsafe_code)]` into crate roots. This is the one rule
//! violation with a unique, style-safe fix, so the linter offers to
//! write it instead of only complaining.

use std::fs;
use std::path::{Path, PathBuf};

/// Inserts `#![forbid(unsafe_code)]` after the file's header block
/// (leading `//!` docs and existing `#![…]` inner attributes). Returns
/// `None` when the attribute is already present.
pub fn insert_forbid(source: &str) -> Option<String> {
    // Check the code view, not the raw text: a doc comment *mentioning*
    // the attribute must not satisfy (or confuse) the fixer.
    let view = crate::lexer::scan(source);
    if (1..=view.len()).any(|n| view.line(n).code.contains("forbid(unsafe_code)")) {
        return None;
    }
    let lines: Vec<&str> = source.lines().collect();
    // The header ends at the first line that is neither an inner doc
    // comment, an inner attribute, nor a blank continuation of those.
    let mut insert_after = 0; // number of leading lines kept before the attr
    let mut last_header_kind_attr = false;
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        if t.starts_with("//!") || t.starts_with("#![") {
            insert_after = i + 1;
            last_header_kind_attr = t.starts_with("#![");
        } else if t.is_empty() && insert_after == i {
            // A blank line directly after the header may still be
            // followed by more header (docs … blank … attrs).
            insert_after = i + 1;
        } else {
            break;
        }
    }
    // Don't count trailing blank lines as header.
    while insert_after > 0 && lines[insert_after - 1].trim().is_empty() {
        insert_after -= 1;
    }
    let mut out = Vec::with_capacity(lines.len() + 2);
    out.extend_from_slice(&lines[..insert_after]);
    if insert_after > 0 && !last_header_kind_attr {
        // Separate the new attribute from a doc-comment header the way
        // the rest of the workspace formats it.
        out.push("");
    }
    out.push("#![forbid(unsafe_code)]");
    if lines
        .get(insert_after)
        .is_some_and(|l| !l.trim().is_empty())
    {
        out.push("");
    }
    out.extend_from_slice(&lines[insert_after..]);
    let mut fixed = out.join("\n");
    if source.ends_with('\n') {
        fixed.push('\n');
    }
    Some(fixed)
}

/// Applies [`insert_forbid`] to every crate root under `root` that
/// needs it (the conditionally-unsafe `obs` crate is exempt — its
/// `cfg_attr` forbid is the documented contract). Returns the paths
/// rewritten.
pub fn fix_workspace(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut fixed = Vec::new();
    for (rel, abs) in crate::workspace_files(root)? {
        let is_root = rel == "src/lib.rs"
            || (rel.starts_with("crates/")
                && rel.ends_with("/src/lib.rs")
                && rel.matches('/').count() == 3);
        if !is_root || rel.starts_with("crates/obs/") {
            continue;
        }
        let source =
            fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        if let Some(new_source) = insert_forbid(&source) {
            fs::write(&abs, new_source).map_err(|e| format!("write {}: {e}", abs.display()))?;
            fixed.push(abs);
        }
    }
    Ok(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_after_doc_header_with_blank_separator() {
        let src = "//! Crate docs.\n//! More docs.\n\nuse std::fmt;\n";
        let fixed = insert_forbid(src).expect("needs fix");
        assert_eq!(
            fixed,
            "//! Crate docs.\n//! More docs.\n\n#![forbid(unsafe_code)]\n\nuse std::fmt;\n"
        );
    }

    #[test]
    fn inserts_after_existing_attrs_without_extra_blank() {
        let src = "//! Docs.\n\n#![warn(missing_docs)]\n\nuse std::fmt;\n";
        let fixed = insert_forbid(src).expect("needs fix");
        assert_eq!(
            fixed,
            "//! Docs.\n\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n\nuse std::fmt;\n"
        );
    }

    #[test]
    fn bare_file_gets_attr_at_top() {
        let src = "use std::fmt;\n";
        let fixed = insert_forbid(src).expect("needs fix");
        assert_eq!(fixed, "#![forbid(unsafe_code)]\n\nuse std::fmt;\n");
    }

    #[test]
    fn present_attr_is_untouched() {
        assert!(insert_forbid("#![forbid(unsafe_code)]\nfn f() {}\n").is_none());
        assert!(insert_forbid(
            "#![cfg_attr(not(feature = \"x\"), forbid(unsafe_code))]\nfn f() {}\n"
        )
        .is_none());
    }
}
