//! Workspace item indexer: a best-effort symbol pass over the lexer's
//! code view. It extracts fn items (with their impl self-types), struct
//! field lists, intra-file call expressions, confined-construct sites
//! (wall-clock, thread-spawn, atomics, unsafe) and `use` imports — the
//! raw material [`crate::graph`] links into a workspace call graph and
//! [`crate::census`] reads for the counter census.
//!
//! Like the lexer this is deliberately not a Rust parser: a token
//! stream plus a scope stack (impl blocks and fn bodies tracked by
//! brace depth) is enough to attribute every call and site to its
//! enclosing fn. The output over-approximates calls — `Some(x)` and
//! tuple-variant patterns register as "calls" — which is safe for a
//! reachability analysis because names that resolve to no workspace fn
//! simply contribute no edge.

use crate::lexer::FileView;
use crate::rules::{has_atomic_ordering, has_marker_near, has_token, is_test_path};

/// How a call expression is written at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — resolves within the same file, then imports, then
    /// the same crate.
    Bare,
    /// `x.method(…)` — resolves to every impl method of that name in
    /// the caller's crate universe.
    Method,
    /// `Type::method(…)` / `module::helper(…)` — resolves through the
    /// qualifier first.
    Qualified,
}

/// One call expression inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Syntactic shape of the call.
    pub kind: CallKind,
    /// The path segment before `::` for [`CallKind::Qualified`] calls
    /// (`Gir` in `Gir::rtk(…)`), when syntactically present.
    pub qualifier: Option<String>,
    /// The identifier before the `.` for [`CallKind::Method`] calls
    /// (`barrier` in `self.barrier.wait()`), when syntactically present.
    pub receiver: Option<String>,
    /// The called name.
    pub name: String,
    /// 1-indexed line of the call.
    pub line: usize,
}

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The fn's name.
    pub name: String,
    /// Self type of the enclosing `impl` block, if any.
    pub self_type: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// 1-indexed line of the closing body brace (file end if unclosed).
    pub body_end: usize,
    /// Inside `#[cfg(test)]` or a test path — excluded from the graph.
    pub is_test: bool,
    /// Every call expression in the body, in source order.
    pub calls: Vec<Call>,
}

/// One `struct` item with named fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// 1-indexed line of the `struct` keyword.
    pub line: usize,
    /// Named fields as `(name, line)`, in declaration order.
    pub fields: Vec<(String, usize)>,
}

/// What kind of confined construct a [`Site`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `Instant::now` / `SystemTime` read.
    WallClock,
    /// `thread::spawn` / `thread::scope` / `thread::Builder`.
    ThreadSpawn,
    /// Any atomic memory ordering use.
    Atomic,
    /// Specifically `Ordering::SeqCst`.
    SeqCst,
    /// An `unsafe` token.
    Unsafe,
}

/// One confined-construct site, attributable to a fn by line span.
#[derive(Debug, Clone)]
pub struct Site {
    /// What the site is.
    pub kind: SiteKind,
    /// 1-indexed source line.
    pub line: usize,
    /// Whether a justifying marker comment (`ORDERING:` for atomics,
    /// `SAFETY:` for unsafe) covers the site.
    pub justified: bool,
    /// Inside `#[cfg(test)]` or a test path.
    pub is_test: bool,
}

/// Everything the indexer extracts from one file.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Every fn item with a body.
    pub fns: Vec<FnItem>,
    /// Every struct with named fields.
    pub structs: Vec<StructItem>,
    /// Every confined-construct site.
    pub sites: Vec<Site>,
    /// `use` imports as `(leaf name, head segment)` pairs.
    pub imports: Vec<(String, String)>,
}

impl FileIndex {
    /// The innermost fn whose body span contains `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.line <= line && line <= f.body_end)
            .max_by_key(|(_, f)| f.line)
            .map(|(i, _)| i)
    }
}

/// Indexes one file. `path` must be workspace-relative with `/`
/// separators (what [`crate::lint_workspace`] hands every pass).
pub fn index_file(path: &str, view: &FileView) -> FileIndex {
    let toks = tokenize(view);
    let mut fns: Vec<FnItem> = Vec::new();
    let mut structs: Vec<StructItem> = Vec::new();
    let mut stack: Vec<ScopeEntry> = Vec::new();
    let mut depth: i64 = 0;
    let path_is_test = is_test_path(path);

    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('#') => {
                i = skip_attribute(&toks, i);
            }
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                while stack.last().is_some_and(|s| s.open_depth > depth) {
                    if let Some(entry) = stack.pop() {
                        if let ScopeKind::Fn(idx) = entry.kind {
                            fns[idx].body_end = toks[i].line;
                        }
                    }
                }
                i += 1;
            }
            Tok::Punct('(') => {
                if let Some(fn_idx) = current_fn(&stack) {
                    if let Some(call) = call_at(&toks, i) {
                        fns[fn_idx].calls.push(call);
                    }
                }
                i += 1;
            }
            Tok::Ident(w) if w == "impl" => {
                let (next, self_ty, opened) = parse_impl_header(&toks, i + 1);
                if opened {
                    depth += 1;
                    stack.push(ScopeEntry {
                        kind: ScopeKind::Impl(self_ty),
                        open_depth: depth,
                    });
                }
                i = next;
            }
            Tok::Ident(w) if w == "fn" => {
                i = parse_fn(
                    &toks,
                    i,
                    view,
                    path_is_test,
                    &mut fns,
                    &mut stack,
                    &mut depth,
                );
            }
            Tok::Ident(w) if w == "struct" => {
                i = parse_struct(&toks, i, &mut structs);
            }
            _ => i += 1,
        }
    }
    // Unclosed scopes (truncated file): already initialised to file end.

    FileIndex {
        path: path.to_string(),
        fns,
        structs,
        sites: collect_sites(path, view),
        imports: parse_imports(view),
    }
}

// ---------------------------------------------------------------------
// Token stream.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    /// `::`
    PathSep,
    Punct(char),
}

#[derive(Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Flattens the code view into a token stream. Lifetimes and blanked
/// char-literal quotes are dropped; numbers are dropped (never an item
/// or call name); everything else becomes an ident, `::`, or a
/// one-character punct.
fn tokenize(view: &FileView) -> Vec<Spanned> {
    let mut out = Vec::new();
    for n in 1..=view.len() {
        let chars: Vec<char> = view.line(n).code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Spanned {
                    tok: Tok::PathSep,
                    line: n,
                });
                i += 2;
            } else if c == '\'' {
                // Lifetime (`'a`) or a blanked char-literal quote.
                i += 1;
                while i < chars.len() && is_word_char(chars[i]) {
                    i += 1;
                }
            } else if c.is_ascii_digit() {
                while i < chars.len() && is_word_char(chars[i]) {
                    i += 1;
                }
            } else if is_word_char(c) {
                let start = i;
                while i < chars.len() && is_word_char(chars[i]) {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                out.push(Spanned {
                    tok: Tok::Ident(ident),
                    line: n,
                });
            } else {
                out.push(Spanned {
                    tok: Tok::Punct(c),
                    line: n,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

// ---------------------------------------------------------------------
// Item parsing.
// ---------------------------------------------------------------------

#[derive(Debug)]
enum ScopeKind {
    /// An `impl` block with its self type ("" when unparseable).
    Impl(String),
    /// A fn body, by index into the `fns` vec.
    Fn(usize),
}

#[derive(Debug)]
struct ScopeEntry {
    kind: ScopeKind,
    /// Brace depth *inside* the scope (depth after its `{`).
    open_depth: i64,
}

fn current_fn(stack: &[ScopeEntry]) -> Option<usize> {
    stack.iter().rev().find_map(|s| match s.kind {
        ScopeKind::Fn(idx) => Some(idx),
        _ => None,
    })
}

/// Skips `#[...]` / `#![...]`; returns the index after the attribute.
fn skip_attribute(toks: &[Spanned], i: usize) -> usize {
    let mut j = i + 1;
    if matches!(toks.get(j).map(|s| &s.tok), Some(Tok::Punct('!'))) {
        j += 1;
    }
    if !matches!(toks.get(j).map(|s| &s.tok), Some(Tok::Punct('['))) {
        return i + 1; // stray `#`, not an attribute
    }
    let mut depth = 0i64;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a balanced `<…>` group starting at `i`. `->` arrows inside
/// (fn-trait bounds) must not close an angle, hence the dash tracking.
fn skip_angles(toks: &[Spanned], mut i: usize) -> usize {
    let mut depth = 0i64;
    let mut prev_dash = false;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') if !prev_dash => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        prev_dash = matches!(toks[i].tok, Tok::Punct('-'));
        i += 1;
    }
    i
}

/// Parses an impl header starting just after the `impl` keyword.
/// Returns `(next index, self type, body opened)`. The self type is the
/// last path segment of the implemented-on type: the segment after
/// `for` in `impl Trait for Type`, else the first type named.
fn parse_impl_header(toks: &[Spanned], mut i: usize) -> (usize, String, bool) {
    if matches!(toks.get(i).map(|s| &s.tok), Some(Tok::Punct('<'))) {
        i = skip_angles(toks, i);
    }
    let mut candidate = String::new();
    let mut prev_pathsep = false;
    let mut frozen = false;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => return (i + 1, candidate, true),
            Tok::Punct(';') => return (i + 1, candidate, false),
            Tok::Ident(w) if w == "for" && !frozen => {
                candidate.clear();
                prev_pathsep = false;
            }
            Tok::Ident(w) if w == "where" => {
                frozen = true;
                prev_pathsep = false;
            }
            Tok::Ident(w)
                if !frozen && !is_keyword(w) && (candidate.is_empty() || prev_pathsep) =>
            {
                candidate = w.clone();
                prev_pathsep = false;
            }
            Tok::PathSep => prev_pathsep = true,
            _ => prev_pathsep = false,
        }
        i += 1;
    }
    (i, candidate, false)
}

/// Parses a `fn` item starting at the `fn` keyword; pushes the item and
/// its body scope. Bodyless declarations (trait methods) and fn-pointer
/// types (`fn(u32) -> u32`) are skipped.
fn parse_fn(
    toks: &[Spanned],
    i: usize,
    view: &FileView,
    path_is_test: bool,
    fns: &mut Vec<FnItem>,
    stack: &mut Vec<ScopeEntry>,
    depth: &mut i64,
) -> usize {
    let Some(Spanned {
        tok: Tok::Ident(name),
        ..
    }) = toks.get(i + 1)
    else {
        return i + 1; // fn-pointer type, not an item
    };
    let fn_line = toks[i].line;
    // Find the body `{` (or the `;` of a bodyless decl) outside parens
    // and brackets — `-> [(&'static str, u64); 13]` has a `;` that must
    // not read as a declaration end.
    let Some((b, opened)) = scan_to_body(toks, i + 2) else {
        return toks.len();
    };
    if !opened {
        return b + 1;
    };
    let self_type = stack.iter().rev().find_map(|s| match &s.kind {
        ScopeKind::Impl(t) if !t.is_empty() => Some(t.clone()),
        _ => None,
    });
    fns.push(FnItem {
        name: name.clone(),
        self_type,
        line: fn_line,
        body_end: view.len(),
        is_test: path_is_test || view.is_test_line(fn_line),
        calls: Vec::new(),
    });
    *depth += 1;
    stack.push(ScopeEntry {
        kind: ScopeKind::Fn(fns.len() - 1),
        open_depth: *depth,
    });
    b + 1
}

/// Parses a `struct` item starting at the `struct` keyword. Only
/// named-field bodies contribute fields; tuple and unit structs are
/// recorded with none. The body is consumed here (it nests no items),
/// so the main loop's depth is untouched.
fn parse_struct(toks: &[Spanned], i: usize, structs: &mut Vec<StructItem>) -> usize {
    let Some(Spanned {
        tok: Tok::Ident(name),
        ..
    }) = toks.get(i + 1)
    else {
        return i + 1;
    };
    let s_line = toks[i].line;
    let Some((b, opened)) = scan_to_body(toks, i + 2) else {
        structs.push(StructItem {
            name: name.clone(),
            line: s_line,
            fields: Vec::new(),
        });
        return toks.len();
    };
    if !opened {
        structs.push(StructItem {
            name: name.clone(),
            line: s_line,
            fields: Vec::new(),
        });
        return b + 1;
    }
    let (fields, after) = parse_fields(toks, b + 1);
    structs.push(StructItem {
        name: name.clone(),
        line: s_line,
        fields,
    });
    after
}

/// Scans an item signature for its body `{` or terminating `;`, both
/// only counted outside paren/bracket groups. Returns `(index, true)`
/// for a body brace, `(index, false)` for a semicolon, `None` at EOF.
fn scan_to_body(toks: &[Spanned], mut j: usize) -> Option<(usize, bool)> {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') if paren == 0 && bracket == 0 => return Some((j, true)),
            Tok::Punct(';') if paren == 0 && bracket == 0 => return Some((j, false)),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses named fields starting just after the body `{`. A field is an
/// ident directly followed by `:` at relative brace depth 1 outside
/// parens, in expect-field position (after `{` or a top-level `,`).
/// Returns `(fields, index after the closing brace)`.
fn parse_fields(toks: &[Spanned], mut i: usize) -> (Vec<(String, usize)>, usize) {
    let mut fields = Vec::new();
    let mut rel = 1i64;
    let mut paren = 0i64;
    let mut expect = true;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => rel += 1,
            Tok::Punct('}') => {
                rel -= 1;
                if rel == 0 {
                    return (fields, i + 1);
                }
            }
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct(',') if rel == 1 && paren == 0 => expect = true,
            Tok::Punct('#') => {
                i = skip_attribute(toks, i);
                continue;
            }
            Tok::Ident(w) if rel == 1 && paren == 0 && expect && w != "pub" => {
                if matches!(toks.get(i + 1).map(|s| &s.tok), Some(Tok::Punct(':'))) {
                    fields.push((w.clone(), toks[i].line));
                }
                expect = false;
            }
            _ => {}
        }
        i += 1;
    }
    (fields, i)
}

/// Classifies the `(` at `i` as a call expression, if the token before
/// it is a callable (non-keyword) name. Macros (`name!(…)`) never match
/// because the token before `(` is `!`.
fn call_at(toks: &[Spanned], i: usize) -> Option<Call> {
    let prev = toks.get(i.checked_sub(1)?)?;
    let name = match &prev.tok {
        Tok::Ident(w) if !is_keyword(w) => w.clone(),
        _ => return None,
    };
    let ident_at = |k: usize| {
        toks.get(k).and_then(|s| match &s.tok {
            Tok::Ident(w) => Some(w.clone()),
            _ => None,
        })
    };
    let before = i.checked_sub(2).and_then(|k| toks.get(k)).map(|s| &s.tok);
    let (kind, qualifier, receiver) = match before {
        Some(Tok::Punct('.')) => {
            let r = i.checked_sub(3).and_then(ident_at);
            (CallKind::Method, None, r)
        }
        Some(Tok::PathSep) => {
            let q = i.checked_sub(3).and_then(ident_at);
            (CallKind::Qualified, q, None)
        }
        _ => (CallKind::Bare, None, None),
    };
    Some(Call {
        kind,
        qualifier,
        receiver,
        name,
        line: prev.line,
    })
}

// ---------------------------------------------------------------------
// Sites and imports.
// ---------------------------------------------------------------------

fn collect_sites(path: &str, view: &FileView) -> Vec<Site> {
    const THREAD_TOKENS: [&str; 3] = ["thread::spawn", "thread::scope", "thread::Builder"];
    let path_test = is_test_path(path);
    let mut out = Vec::new();
    for n in 1..=view.len() {
        let code = &view.line(n).code;
        let is_test = path_test || view.is_test_line(n);
        if code.contains("Instant::now") || has_token(code, "SystemTime") {
            out.push(Site {
                kind: SiteKind::WallClock,
                line: n,
                justified: false,
                is_test,
            });
        }
        if THREAD_TOKENS.iter().any(|t| has_token(code, t)) {
            out.push(Site {
                kind: SiteKind::ThreadSpawn,
                line: n,
                justified: false,
                is_test,
            });
        }
        if has_atomic_ordering(code) {
            let justified = has_marker_near(view, n, "ORDERING:");
            out.push(Site {
                kind: SiteKind::Atomic,
                line: n,
                justified,
                is_test,
            });
        }
        if has_token(code, "SeqCst") && code.contains("Ordering::") {
            let justified = has_marker_near(view, n, "ORDERING:");
            out.push(Site {
                kind: SiteKind::SeqCst,
                line: n,
                justified,
                is_test,
            });
        }
        if has_token(code, "unsafe") {
            let justified = has_marker_near(view, n, "SAFETY:");
            out.push(Site {
                kind: SiteKind::Unsafe,
                line: n,
                justified,
                is_test,
            });
        }
    }
    out
}

/// Last path segment of a `use` item (alias-aware); `None` for globs,
/// empties and `self` re-exports.
fn leaf_of(item: &str) -> Option<String> {
    let item = item.trim();
    if item.is_empty() || item.contains('*') {
        return None;
    }
    let last = if let Some((_, alias)) = item.rsplit_once(" as ") {
        alias.trim()
    } else {
        item.rsplit("::").next().unwrap_or(item).trim()
    };
    (!last.is_empty() && last != "self").then(|| last.to_string())
}

/// Single-line `use` imports as `(leaf, head segment)` pairs — enough
/// to route a bare call to the crate it was imported from.
fn parse_imports(view: &FileView) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for n in 1..=view.len() {
        let code = view.line(n).code.trim();
        let Some(rest) = code
            .strip_prefix("pub use ")
            .or_else(|| code.strip_prefix("use "))
        else {
            continue;
        };
        let rest = rest.trim_end_matches(';').trim();
        if let Some(bpos) = rest.find('{') {
            let head = rest[..bpos]
                .split("::")
                .next()
                .unwrap_or("")
                .trim()
                .to_string();
            let inner = rest[bpos + 1..].trim_end_matches('}');
            for item in inner.split(',') {
                if let Some(leaf) = leaf_of(item) {
                    out.push((leaf, head.clone()));
                }
            }
        } else if let Some(leaf) = leaf_of(rest) {
            let head = rest.split("::").next().unwrap_or("").trim().to_string();
            out.push((leaf, head));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn index(src: &str) -> FileIndex {
        index_file("crates/core/src/x.rs", &scan(src))
    }

    #[test]
    fn fn_items_with_impl_self_type() {
        let idx = index(
            "impl Gir {\n    pub fn rtk(&self) -> u64 {\n        self.helper()\n    }\n}\n\
             fn free() {}\n",
        );
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].name, "rtk");
        assert_eq!(idx.fns[0].self_type.as_deref(), Some("Gir"));
        assert_eq!(idx.fns[0].line, 2);
        assert_eq!(idx.fns[0].body_end, 4);
        assert_eq!(idx.fns[1].name, "free");
        assert_eq!(idx.fns[1].self_type, None);
    }

    #[test]
    fn trait_impl_self_type_is_after_for() {
        let idx = index(
            "impl<'p, G: GridTable> RtkQuery for ParGir<'p, G> {\n    fn reverse_top_k(&self) {}\n}\n",
        );
        assert_eq!(idx.fns[0].self_type.as_deref(), Some("ParGir"));
    }

    #[test]
    fn calls_are_classified() {
        let idx = index(
            "fn f() {\n    helper();\n    self.recorder.span();\n    Gir::rtk();\n    \
             format!(\"x\");\n}\n",
        );
        let calls = &idx.fns[0].calls;
        assert_eq!(calls.len(), 3, "macro must not register: {calls:?}");
        assert_eq!(
            (calls[0].kind, calls[0].name.as_str()),
            (CallKind::Bare, "helper")
        );
        assert_eq!(
            (calls[1].kind, calls[1].name.as_str()),
            (CallKind::Method, "span")
        );
        assert_eq!(calls[2].kind, CallKind::Qualified);
        assert_eq!(calls[2].qualifier.as_deref(), Some("Gir"));
        assert_eq!(calls[2].name, "rtk");
    }

    #[test]
    fn trait_method_decl_is_skipped() {
        let idx =
            index("trait T {\n    fn decl(&self) -> u64;\n    fn with_default(&self) {}\n}\n");
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "with_default");
    }

    #[test]
    fn struct_fields_skip_generics_and_visibility() {
        let idx = index(
            "pub struct QueryStats {\n    pub multiplications: u64,\n    \
             pub(crate) table: BTreeMap<String, u64>,\n    flags: (bool, bool),\n}\n",
        );
        let s = &idx.structs[0];
        assert_eq!(s.name, "QueryStats");
        let names: Vec<&str> = s.fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["multiplications", "table", "flags"]);
    }

    #[test]
    fn sites_and_enclosing_fn() {
        let idx = index(
            "fn timed() {\n    let t = Instant::now();\n}\n\
             fn atomics() {\n    x.load(Ordering::SeqCst);\n}\n",
        );
        assert_eq!(idx.sites.len(), 3); // wall-clock + atomic + seqcst
        assert_eq!(idx.sites[0].kind, SiteKind::WallClock);
        let encl = idx.enclosing_fn(idx.sites[0].line);
        assert_eq!(encl.map(|i| idx.fns[i].name.as_str()), Some("timed"));
        let encl = idx.enclosing_fn(idx.sites[1].line);
        assert_eq!(encl.map(|i| idx.fns[i].name.as_str()), Some("atomics"));
    }

    #[test]
    fn test_fns_are_marked() {
        let idx = index("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n");
        assert!(!idx.fns[0].is_test);
        assert!(idx.fns[1].is_test);
    }

    #[test]
    fn imports_map_leaf_to_head() {
        let idx = index(
            "use rrq_types::metrics::QueryStats;\nuse crate::pool::{WorkerPool, JobResult};\n\
             use std::time::Instant;\n",
        );
        assert!(idx
            .imports
            .contains(&("QueryStats".into(), "rrq_types".into())));
        assert!(idx.imports.contains(&("WorkerPool".into(), "crate".into())));
        assert!(idx.imports.contains(&("JobResult".into(), "crate".into())));
        assert!(idx.imports.contains(&("Instant".into(), "std".into())));
    }
}
