//! SARIF 2.1.0 output: the interchange format CI viewers (GitHub code
//! scanning, VS Code SARIF viewer) understand. Hand-rolled JSON like
//! every other serializer in this zero-dependency workspace; the
//! emitted subset is schema-valid: one run, a full rule catalogue from
//! [`crate::rules::ALL_RULES`] plus the two pseudo-rules, and one
//! result per diagnostic with a physical location.

use crate::baseline::BASELINE_RULE;
use crate::rules::ALL_RULES;
use crate::{Report, SUPPRESSION_RULE};

/// Renders the (post-baseline) report as a SARIF 2.1.0 document.
pub fn render(report: &Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"rrq-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md#11\",\n");
    out.push_str("          \"rules\": [\n");
    let mut rules: Vec<(String, String)> = ALL_RULES
        .iter()
        .map(|r| (r.name().to_string(), r.description().to_string()))
        .collect();
    rules.push((
        SUPPRESSION_RULE.to_string(),
        "suppression directives must be well-formed, known and used".to_string(),
    ));
    rules.push((
        BASELINE_RULE.to_string(),
        "baseline entries must match at least one current finding".to_string(),
    ));
    for (i, (id, desc)) in rules.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": {},\n", json_string(id)));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": {} }}\n",
            json_string(desc)
        ));
        out.push_str(if i + 1 < rules.len() {
            "            },\n"
        } else {
            "            }\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let n = report.diagnostics.len();
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": {},\n", json_string(d.rule)));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{ \"text\": {} }},\n",
            json_string(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": {} }},\n",
            json_string(&d.path)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            d.line
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(if i + 1 < n {
            "        },\n"
        } else {
            "        }\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;

    #[test]
    fn sarif_has_catalogue_and_results() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "counter-census",
                path: "crates/types/src/metrics.rs".into(),
                line: 62,
                message: "field `x` missing from \"merge\"".into(),
            }],
            files_scanned: 1,
            baseline_suppressed: 0,
        };
        let doc = render(&report);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"id\": \"counter-census\""));
        assert!(doc.contains("\"id\": \"barrier-unwind-guard\""));
        assert!(doc.contains("\"startLine\": 62"));
        // Quotes in messages must be escaped.
        assert!(doc.contains("\\\"merge\\\""));
    }
}
