//! Call-graph confinement: links the per-file [`crate::index`] output
//! into a workspace symbol graph and walks it from the query entry
//! points (`Gir::rtk`/`rkr`, the `ParGir` engine, `WorkerPool` job
//! bodies). Any fn transitively reachable from an entry point must not
//! reach a wall-clock read, a thread spawn outside the parallel engine,
//! or an unjustified atomic — and the diagnostic prints the offending
//! call chain hop by hop, which is what the per-file path whitelists
//! could never do.
//!
//! Resolution is deliberately over-approximate (a method call resolves
//! to every impl method of that name in the caller's crate universe)
//! but bounded by the Cargo dependency graph: a call in `rrq-core`
//! can only resolve into crates `rrq-core` actually depends on, so the
//! bench runner's timing loops never produce false chains.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::index::{CallKind, FileIndex, FnItem, SiteKind};
use crate::rules::{is_root, RawDiag, RootKind, Rule, ROOTS};

/// Transitive crate-dependency map: crate dir name (`core`, `obs`, …)
/// to the set of crate dirs it may call into (itself excluded; the
/// resolver always allows same-crate edges). `None` means "no Cargo
/// metadata available" (fixture runs) and resolves permissively.
pub type CrateDeps = BTreeMap<String, BTreeSet<String>>;

/// Files where a barrier/epoch rendezvous is expected and checked.
const RENDEZVOUS_FILES: [&str; 2] = ["crates/core/src/pool.rs", "crates/core/src/par.rs"];

/// Types whose own methods *implement* the rendezvous machinery and its
/// guards — their internal waits are the mechanism, not a use of it.
const RENDEZVOUS_TYPES: [&str; 3] = ["PoisonBarrier", "EpochSync", "EpochPanicGuard"];

/// Files whose thread creation is sanctioned on the query path.
const SPAWN_CONFINED: [&str; 2] = ["crates/core/src/par.rs", "crates/core/src/pool.rs"];

/// Runs every workspace (cross-file) graph rule. Returns diagnostics as
/// `(path, raw diag)` pairs. `check_roots` enables the root-liveness
/// audit, which only makes sense on a full workspace scan.
pub fn check_graph(
    files: &[FileIndex],
    deps: Option<&CrateDeps>,
    check_roots: bool,
) -> Vec<(String, RawDiag)> {
    let graph = Graph::new(files, deps);
    let mut out = Vec::new();
    graph.check_confinement(&mut out);
    check_barrier_guards(files, &mut out);
    if check_roots {
        check_root_liveness(files, &mut out);
    }
    out
}

/// `(file index, fn index)` — one node of the call graph.
type FnRef = (usize, usize);

struct Graph<'a> {
    files: &'a [FileIndex],
    deps: Option<&'a CrateDeps>,
    /// Every non-test fn by name.
    by_name: BTreeMap<&'a str, Vec<FnRef>>,
    /// Every non-test impl method by name.
    methods: BTreeMap<&'a str, Vec<FnRef>>,
    /// Every non-test impl method by (self type, name).
    typed: BTreeMap<(&'a str, &'a str), Vec<FnRef>>,
}

/// Crate dir of a workspace-relative path (`""` for the root crate).
fn crate_of_path(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// File stem (`pool` for `crates/core/src/pool.rs`), for resolving
/// module-qualified calls like `pool::worker_loop(…)`.
fn stem_of(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
}

/// Maps a `use` head segment to a workspace crate dir, when it is one.
fn head_to_crate<'a>(head: &'a str, caller_crate: &'a str) -> Option<&'a str> {
    match head {
        "crate" | "self" | "super" => Some(caller_crate),
        _ => head.strip_prefix("rrq_"),
    }
}

impl<'a> Graph<'a> {
    fn new(files: &'a [FileIndex], deps: Option<&'a CrateDeps>) -> Self {
        let mut by_name: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<FnRef>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (fx, f) in file.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                by_name.entry(&f.name).or_default().push((fi, fx));
                if let Some(t) = &f.self_type {
                    methods.entry(&f.name).or_default().push((fi, fx));
                    typed.entry((t, &f.name)).or_default().push((fi, fx));
                }
            }
        }
        Graph {
            files,
            deps,
            by_name,
            methods,
            typed,
        }
    }

    /// Whether a fn in `target_crate` is callable from `caller_crate`.
    fn visible(&self, caller_crate: &str, target_crate: &str) -> bool {
        if caller_crate == target_crate {
            return true;
        }
        match self.deps {
            None => true,
            Some(map) => match map.get(caller_crate) {
                Some(set) => set.contains(target_crate),
                None => true,
            },
        }
    }

    fn named_in_crate(&self, name: &str, krate: &str) -> Vec<FnRef> {
        self.by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&(fi, _)| crate_of_path(&self.files[fi].path) == krate)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resolves one call to its possible workspace targets.
    fn resolve(&self, fi: usize, caller: &FnItem, call: &crate::index::Call) -> Vec<FnRef> {
        let file = &self.files[fi];
        let caller_crate = crate_of_path(&file.path);
        let filter_visible = |v: &[FnRef]| -> Vec<FnRef> {
            v.iter()
                .copied()
                .filter(|&(tfi, _)| {
                    self.visible(caller_crate, crate_of_path(&self.files[tfi].path))
                })
                .collect()
        };
        match call.kind {
            CallKind::Bare => {
                // Same file first (innermost plausible scope) …
                let local: Vec<FnRef> = self
                    .by_name
                    .get(call.name.as_str())
                    .map(|v| v.iter().copied().filter(|&(tfi, _)| tfi == fi).collect())
                    .unwrap_or_default();
                if !local.is_empty() {
                    return local;
                }
                // … then an explicit import …
                if let Some((_, head)) = file.imports.iter().find(|(leaf, _)| leaf == &call.name) {
                    return match head_to_crate(head, caller_crate) {
                        Some(d) if self.visible(caller_crate, d) => {
                            self.named_in_crate(&call.name, d)
                        }
                        _ => Vec::new(), // std/external import
                    };
                }
                // … then anywhere in the caller's crate.
                self.named_in_crate(&call.name, caller_crate)
            }
            CallKind::Method => self
                .methods
                .get(call.name.as_str())
                .map(|v| filter_visible(v))
                .unwrap_or_default(),
            CallKind::Qualified => {
                let q = match call.qualifier.as_deref() {
                    // Turbofish (`Vec::<u8>::new(…)`): qualifier lost,
                    // fall back to method-name resolution.
                    None => {
                        return self
                            .methods
                            .get(call.name.as_str())
                            .map(|v| filter_visible(v))
                            .unwrap_or_default();
                    }
                    Some("Self") => match caller.self_type.as_deref() {
                        Some(t) => t,
                        None => return Vec::new(),
                    },
                    Some("crate") | Some("self") | Some("super") => {
                        return self.named_in_crate(&call.name, caller_crate);
                    }
                    Some(q) => q,
                };
                let mut targets: Vec<FnRef> = self
                    .typed
                    .get(&(q, call.name.as_str()))
                    .map(|v| filter_visible(v))
                    .unwrap_or_default();
                // Module-qualified free fns: `pool::worker_loop(…)`.
                if let Some(v) = self.by_name.get(call.name.as_str()) {
                    targets.extend(v.iter().copied().filter(|&(tfi, _)| {
                        stem_of(&self.files[tfi].path) == q
                            && self.visible(caller_crate, crate_of_path(&self.files[tfi].path))
                    }));
                }
                targets.sort_unstable();
                targets.dedup();
                targets
            }
        }
    }

    /// Whether `(file, fn)` is a query entry point.
    fn is_entry(&self, fi: usize, f: &FnItem) -> bool {
        if f.is_test {
            return false;
        }
        if let Some(t) = f.self_type.as_deref() {
            if (t == "Gir" || t == "ParGir")
                && (f.name.starts_with("rtk")
                    || f.name.starts_with("rkr")
                    || f.name.starts_with("reverse_"))
            {
                return true;
            }
        }
        self.files[fi].path == "crates/core/src/pool.rs"
            && matches!(f.name.as_str(), "worker_loop" | "run" | "submit")
    }

    fn display(&self, (fi, fx): FnRef) -> String {
        let f = &self.files[fi].fns[fx];
        match &f.self_type {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Multi-source BFS from the entry points; every reached fn's sites
    /// are checked against the confinement policy, and violations carry
    /// the full entry-to-site call chain.
    fn check_confinement(&self, out: &mut Vec<(String, RawDiag)>) {
        let mut parent: BTreeMap<FnRef, Option<FnRef>> = BTreeMap::new();
        let mut queue: VecDeque<FnRef> = VecDeque::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (fx, f) in file.fns.iter().enumerate() {
                if self.is_entry(fi, f) {
                    parent.insert((fi, fx), None);
                    queue.push_back((fi, fx));
                }
            }
        }
        while let Some(cur) = queue.pop_front() {
            let (fi, fx) = cur;
            let caller = &self.files[fi].fns[fx];
            for call in &caller.calls {
                for tgt in self.resolve(fi, caller, call) {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(tgt) {
                        e.insert(Some(cur));
                        queue.push_back(tgt);
                    }
                }
            }
        }

        for &(fi, fx) in parent.keys() {
            let file = &self.files[fi];
            for site in &file.sites {
                if site.is_test || file.enclosing_fn(site.line) != Some(fx) {
                    continue;
                }
                let (rule, allowed, what) = match site.kind {
                    SiteKind::WallClock => (
                        Rule::ConfinementWallClock,
                        file.path.starts_with("crates/obs/"),
                        "wall-clock read",
                    ),
                    SiteKind::ThreadSpawn => (
                        Rule::ConfinementThreadSpawn,
                        SPAWN_CONFINED.contains(&file.path.as_str()),
                        "thread creation",
                    ),
                    SiteKind::Atomic => (
                        Rule::ConfinementAtomics,
                        is_root(&file.path, RootKind::Ordering) && site.justified,
                        "unjustified or unconfined atomic-ordering site",
                    ),
                    // SeqCst and unsafe have their own per-file rules.
                    _ => continue,
                };
                if allowed {
                    continue;
                }
                let chain = self.chain(&parent, (fi, fx));
                out.push((
                    file.path.clone(),
                    RawDiag {
                        rule,
                        line: site.line,
                        message: format!(
                            "{what} reachable from the query entry points via {chain}"
                        ),
                    },
                ));
            }
        }
    }

    /// Reconstructs the entry-to-fn call chain for a diagnostic.
    fn chain(&self, parent: &BTreeMap<FnRef, Option<FnRef>>, mut cur: FnRef) -> String {
        let mut hops = vec![self.display(cur)];
        while let Some(Some(p)) = parent.get(&cur) {
            cur = *p;
            hops.push(self.display(cur));
        }
        hops.reverse();
        hops.join(" -> ")
    }
}

/// Every barrier/epoch rendezvous in the concurrency cores must sit
/// under an armed unwind guard (the PR 5 review fix): a peer that
/// panics mid-epoch must poison the barrier, not hang it. Methods *of*
/// the rendezvous types are the mechanism itself and exempt.
fn check_barrier_guards(files: &[FileIndex], out: &mut Vec<(String, RawDiag)>) {
    for file in files {
        if !RENDEZVOUS_FILES.contains(&file.path.as_str()) {
            continue;
        }
        for f in &file.fns {
            if f.is_test
                || f.self_type
                    .as_deref()
                    .is_some_and(|t| RENDEZVOUS_TYPES.contains(&t))
            {
                continue;
            }
            for call in &f.calls {
                let is_rendezvous = call.kind == CallKind::Method
                    && (call.name == "exchange"
                        || (call.name == "wait"
                            && call
                                .receiver
                                .as_deref()
                                .is_some_and(|r| r.to_ascii_lowercase().contains("barrier"))));
                if !is_rendezvous {
                    continue;
                }
                let guarded = f
                    .calls
                    .iter()
                    .any(|c| c.name == "panic_guard" && c.line <= call.line);
                if !guarded {
                    out.push((
                        file.path.clone(),
                        RawDiag {
                            rule: Rule::BarrierUnwindGuard,
                            line: call.line,
                            message: format!(
                                "rendezvous `{}` in `{}` has no armed unwind guard; a \
                                 panicking peer would hang the barrier — arm \
                                 `sync.panic_guard()` before the first exchange",
                                call.name, f.name
                            ),
                        },
                    ));
                }
            }
        }
    }
}

/// A root (whitelist) entry that matches no live site is rot: the lists
/// must shrink with the code they describe.
fn check_root_liveness(files: &[FileIndex], out: &mut Vec<(String, RawDiag)>) {
    for root in &ROOTS {
        let Some(file) = files.iter().find(|f| f.path == root.path) else {
            out.push((
                root.path.to_string(),
                RawDiag {
                    rule: Rule::WhitelistStale,
                    line: 1,
                    message: format!(
                        "{} root entry names {}, which is not in the workspace scan; \
                         remove the stale entry from rules::ROOTS",
                        root.kind.label(),
                        root.path
                    ),
                },
            ));
            continue;
        };
        let live = file.sites.iter().any(|s| match root.kind {
            RootKind::Unsafe => s.kind == SiteKind::Unsafe,
            RootKind::Ordering => s.kind == SiteKind::Atomic && !s.is_test,
            RootKind::WallClock => s.kind == SiteKind::WallClock && !s.is_test,
            RootKind::ThreadSpawn => s.kind == SiteKind::ThreadSpawn && !s.is_test,
        });
        if !live {
            out.push((
                root.path.to_string(),
                RawDiag {
                    rule: Rule::WhitelistStale,
                    line: 1,
                    message: format!(
                        "{} root entry for {} matches no live site; remove the stale \
                         entry from rules::ROOTS",
                        root.kind.label(),
                        root.path
                    ),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use crate::lexer::scan;

    fn indexes(files: &[(&str, &str)]) -> Vec<FileIndex> {
        files.iter().map(|(p, s)| index_file(p, &scan(s))).collect()
    }

    #[test]
    fn wall_clock_reached_through_helper_is_flagged_with_chain() {
        let files = indexes(&[(
            "crates/core/src/gir.rs",
            "impl Gir {\n    pub fn rtk(&self) {\n        helper();\n    }\n}\n\
                 fn helper() {\n    let t = std::time::Instant::now();\n}\n",
        )]);
        let diags = check_graph(&files, None, false);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].1.rule, Rule::ConfinementWallClock);
        assert!(
            diags[0].1.message.contains("Gir::rtk -> helper"),
            "{}",
            diags[0].1.message
        );
    }

    #[test]
    fn unreachable_site_is_not_flagged() {
        let files = indexes(&[(
            "crates/core/src/gir.rs",
            "impl Gir {\n    pub fn rtk(&self) {}\n}\n\
                 fn unrelated() {\n    let t = std::time::Instant::now();\n}\n",
        )]);
        assert!(check_graph(&files, None, false).is_empty());
    }

    #[test]
    fn dep_universe_blocks_cross_crate_false_edges() {
        // `run` exists in bench (with a clock), but core does not depend
        // on bench, so `pool.rs`'s bare `run(…)` must not resolve there.
        let files = indexes(&[
            (
                "crates/core/src/pool.rs",
                "pub fn submit() {\n    run();\n}\npub fn run() {}\n",
            ),
            (
                "crates/bench/src/runner.rs",
                "pub fn run() {\n    let t = std::time::Instant::now();\n}\n",
            ),
        ]);
        let mut deps = CrateDeps::new();
        deps.insert(
            "core".into(),
            ["types", "obs"].iter().map(|s| s.to_string()).collect(),
        );
        let diags = check_graph(&files, Some(&deps), false);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unguarded_exchange_fires_and_guarded_does_not() {
        let files = indexes(&[(
            "crates/core/src/par.rs",
            "fn good(sync: &EpochSync) {\n    let _g = sync.panic_guard();\n    \
             sync.exchange(1, 2, false);\n}\n\
             fn bad(sync: &EpochSync) {\n    sync.exchange(1, 2, false);\n}\n",
        )]);
        let diags = check_graph(&files, None, false);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].1.rule, Rule::BarrierUnwindGuard);
        assert!(diags[0].1.message.contains("`bad`"));
    }

    #[test]
    fn stale_root_is_reported_when_enabled() {
        let files = indexes(&[("crates/core/src/lib.rs", "fn f() {}\n")]);
        let diags = check_graph(&files, None, true);
        assert!(diags
            .iter()
            .any(|(p, d)| { d.rule == Rule::WhitelistStale && p == "crates/obs/src/alloc.rs" }));
    }
}
