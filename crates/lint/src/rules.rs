//! The rule set: each rule encodes a project invariant that a past bug
//! or standing contract made explicit (DESIGN.md §11 tells each story).
//! Rules match on the comment-free, literal-blanked code view produced
//! by [`crate::lexer`], so nothing fires on doc text or error messages.

use crate::lexer::FileView;

/// How far above a site a justifying `// SAFETY:` / `// ORDERING:`
/// comment may sit (same line always counts).
const COMMENT_WINDOW: usize = 5;

/// The named rules. Order is the reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `HashMap`/`HashSet` banned in counter-affecting crates: their
    /// iteration order is per-process randomised, which broke same-seed
    /// counter determinism in MPA (PR 2). Use `BTreeMap`/`BTreeSet`.
    NoHashIteration,
    /// `unsafe` confined to a whitelist, every site `// SAFETY:`-
    /// commented, every other crate root `#![forbid(unsafe_code)]`.
    UnsafeContainment,
    /// Atomic `Ordering::*` confined to the concurrency cores, every
    /// permitted site `// ORDERING:`-commented (the shared-bound
    /// broadcast contract from PR 3).
    AtomicOrderingJustified,
    /// `Instant::now`/`SystemTime` banned outside the observability
    /// crate and the bench runner's timed sections: counters must be a
    /// pure function of data, query and shard layout.
    NoWallClockInCounters,
    /// Thread spawning confined to the parallel engine and the bench
    /// runner's batch striping.
    NoThreadSpawnOutsidePar,
    /// `unwrap()`/`expect("…")` banned in library `src/`; every
    /// intentional panic site carries a suppression with a reason.
    NoUnwrapInLib,
    /// `Ordering::SeqCst` anywhere (tests included) needs an
    /// `// ORDERING:` comment arguing why nothing weaker suffices —
    /// SeqCst is almost always a placeholder for "did not think about
    /// it", and it teaches the wrong idiom even in test code.
    SeqCstJustified,
    /// Call-graph rule: a wall-clock read (`Instant::now`/`SystemTime`)
    /// transitively reachable from the query entry points makes
    /// counters scheduling-dependent. Only `crates/obs` (the sanctioned
    /// instrumentation layer, no-op'd on untraced paths) may sit below
    /// the engine.
    ConfinementWallClock,
    /// Call-graph rule: thread creation reachable from the query entry
    /// points must stay inside the parallel engine (`par.rs`) and its
    /// worker pool (`pool.rs`) — anything else bypasses the
    /// deterministic sharding/merge discipline.
    ConfinementThreadSpawn,
    /// Call-graph rule: an atomic-ordering site reachable from the
    /// query entry points must be in an ordering-root file *and* carry
    /// its `// ORDERING:` justification — an inline-suppressed atomic
    /// elsewhere may be fine off the query path, but not on it.
    ConfinementAtomics,
    /// Workspace rule: every `QueryStats` field must be booked at every
    /// enumeration site (`merge` destructure, `counters()` export, the
    /// explain `Funnel::reconcile` cross-check or its documented exempt
    /// list) so a new counter cannot silently skip a site.
    CounterCensus,
    /// Workspace rule: every `Barrier`/`EpochSync` rendezvous in the
    /// concurrency cores must sit under a poison/unwind guard (the PR 5
    /// review fix) — a panicking peer must release the rendezvous, not
    /// hang it.
    BarrierUnwindGuard,
    /// Workspace rule: a whitelist (root) entry that matches no current
    /// site is rot and becomes a hard error — the annotated-roots lists
    /// must shrink with the code they describe.
    WhitelistStale,
}

/// Every rule, in reporting order.
pub const ALL_RULES: [Rule; 13] = [
    Rule::NoHashIteration,
    Rule::UnsafeContainment,
    Rule::AtomicOrderingJustified,
    Rule::NoWallClockInCounters,
    Rule::NoThreadSpawnOutsidePar,
    Rule::NoUnwrapInLib,
    Rule::SeqCstJustified,
    Rule::ConfinementWallClock,
    Rule::ConfinementThreadSpawn,
    Rule::ConfinementAtomics,
    Rule::CounterCensus,
    Rule::BarrierUnwindGuard,
    Rule::WhitelistStale,
];

impl Rule {
    /// The kebab-case name used in diagnostics and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoHashIteration => "no-hash-iteration",
            Rule::UnsafeContainment => "unsafe-containment",
            Rule::AtomicOrderingJustified => "atomic-ordering-justified",
            Rule::NoWallClockInCounters => "no-wall-clock-in-counters",
            Rule::NoThreadSpawnOutsidePar => "no-thread-spawn-outside-par",
            Rule::NoUnwrapInLib => "no-unwrap-in-lib",
            Rule::SeqCstJustified => "seqcst-justified",
            Rule::ConfinementWallClock => "confinement-wall-clock",
            Rule::ConfinementThreadSpawn => "confinement-thread-spawn",
            Rule::ConfinementAtomics => "confinement-atomics",
            Rule::CounterCensus => "counter-census",
            Rule::BarrierUnwindGuard => "barrier-unwind-guard",
            Rule::WhitelistStale => "whitelist-stale",
        }
    }

    /// One-line description used by the SARIF rule catalogue.
    pub fn description(self) -> &'static str {
        match self {
            Rule::NoHashIteration => {
                "HashMap/HashSet banned in counter-affecting crates (iteration order is \
                 per-process randomised)"
            }
            Rule::UnsafeContainment => {
                "unsafe confined to annotated root files, every site // SAFETY:-commented"
            }
            Rule::AtomicOrderingJustified => {
                "atomic memory orderings confined to the concurrency cores, every site \
                 // ORDERING:-commented"
            }
            Rule::NoWallClockInCounters => {
                "Instant::now/SystemTime reads confined to obs and the bench runner's timed \
                 sections"
            }
            Rule::NoThreadSpawnOutsidePar => {
                "thread creation confined to the parallel engine, worker pool and bench striping"
            }
            Rule::NoUnwrapInLib => "no undocumented panic sites (unwrap/expect) in library code",
            Rule::SeqCstJustified => {
                "Ordering::SeqCst needs an // ORDERING: argument that nothing weaker suffices"
            }
            Rule::ConfinementWallClock => {
                "no wall-clock read transitively reachable from the query entry points"
            }
            Rule::ConfinementThreadSpawn => {
                "no thread creation reachable from the query entry points outside par.rs/pool.rs"
            }
            Rule::ConfinementAtomics => {
                "no unjustified atomic-ordering site reachable from the query entry points"
            }
            Rule::CounterCensus => {
                "every QueryStats field booked in merge, counters() and Funnel::reconcile"
            }
            Rule::BarrierUnwindGuard => {
                "every barrier/epoch rendezvous sits under a poison/unwind guard"
            }
            Rule::WhitelistStale => "root (whitelist) entries must match at least one live site",
        }
    }

    /// Parses a rule name as written inside `allow(…)`.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// A rule hit before suppression handling.
#[derive(Debug, Clone)]
pub struct RawDiag {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-indexed source line.
    pub line: usize,
    /// Human-facing explanation.
    pub message: String,
}

// ---------------------------------------------------------------------
// Path classification. All paths are workspace-relative with `/`
// separators (the walker normalises).
// ---------------------------------------------------------------------

/// Crates whose counters feed the benchmark-diff gate; hash collections
/// are banned anywhere inside them (tests included — flaky assertions
/// are the same bug wearing a different hat).
const HASH_BAN_SCOPES: [&str; 4] = [
    "crates/core/",
    "crates/baselines/",
    "crates/rtree/",
    "crates/bench/src/experiments/",
];

/// What kind of confined construct a [`Root`] entry permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootKind {
    /// `unsafe` blocks/fns/impls.
    Unsafe,
    /// Atomic memory orderings (`Ordering::Relaxed` … `SeqCst`).
    Ordering,
    /// `Instant::now` / `SystemTime` reads.
    WallClock,
    /// `thread::spawn` / `thread::scope` / `thread::Builder`.
    ThreadSpawn,
}

impl RootKind {
    /// Human name used in stale-root diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            RootKind::Unsafe => "unsafe",
            RootKind::Ordering => "atomic-ordering",
            RootKind::WallClock => "wall-clock",
            RootKind::ThreadSpawn => "thread-spawn",
        }
    }
}

/// One annotated root: a file explicitly allowed to contain a confined
/// construct, with the argument for why. Roots are not a free pass —
/// per-site justification comments still apply, the call-graph
/// confinement pass still forbids reaching most of them from the query
/// entry points, and a root whose file no longer contains a matching
/// site is a hard `whitelist-stale` error.
#[derive(Debug, Clone, Copy)]
pub struct Root {
    /// What the root permits.
    pub kind: RootKind,
    /// Workspace-relative file path.
    pub path: &'static str,
    /// Why this file is allowed to hold such sites.
    pub why: &'static str,
}

/// Every annotated root in the workspace. This is the single source the
/// per-file checks, the call-graph confinement pass and the staleness
/// audit all read.
pub const ROOTS: [Root; 11] = [
    Root {
        kind: RootKind::Unsafe,
        path: "crates/obs/src/alloc.rs",
        why: "the opt-in counting allocator implements GlobalAlloc",
    },
    Root {
        kind: RootKind::Unsafe,
        path: "crates/obs/tests/noop_alloc.rs",
        why: "the allocation-free-path proof needs its own GlobalAlloc",
    },
    Root {
        kind: RootKind::Ordering,
        path: "crates/core/src/par.rs",
        why: "shared-bound broadcast and saturation flag of the parallel engine",
    },
    Root {
        kind: RootKind::Ordering,
        path: "crates/obs/src/shared.rs",
        why: "the lock-free telemetry registry",
    },
    Root {
        kind: RootKind::Ordering,
        path: "crates/obs/src/alloc.rs",
        why: "the counting allocator's counters",
    },
    Root {
        kind: RootKind::WallClock,
        path: "crates/bench/src/runner.rs",
        why: "the bench runner's timed batch loop",
    },
    Root {
        kind: RootKind::WallClock,
        path: "crates/bench/src/loadgen.rs",
        why: "the load generator's pacing and latency clock",
    },
    Root {
        kind: RootKind::WallClock,
        path: "crates/bench/src/bin/rrq-exp.rs",
        why: "the experiment driver's wall-clock progress reporting",
    },
    Root {
        kind: RootKind::ThreadSpawn,
        path: "crates/core/src/par.rs",
        why: "the parallel query engine's scoped shard workers",
    },
    Root {
        kind: RootKind::ThreadSpawn,
        path: "crates/core/src/pool.rs",
        why: "the persistent worker pool's long-lived threads",
    },
    Root {
        kind: RootKind::ThreadSpawn,
        path: "crates/bench/src/runner.rs",
        why: "the bench runner's batch striping",
    },
];

/// Whether `path` is an annotated root of the given kind.
pub fn is_root(path: &str, kind: RootKind) -> bool {
    ROOTS.iter().any(|r| r.kind == kind && r.path == path)
}

/// Library crates exempt from `no-unwrap-in-lib` wholesale: the bench
/// harness is driver code (the issue's "tests/benches/bins exempt").
const UNWRAP_EXEMPT_CRATES: [&str; 1] = ["bench"];

fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

pub(crate) fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

fn is_bin_path(path: &str) -> bool {
    path.contains("/src/bin/")
}

fn is_crate_root(path: &str) -> bool {
    if path == "src/lib.rs" {
        return true;
    }
    match path.strip_prefix("crates/") {
        Some(rest) => {
            let mut parts = rest.split('/');
            let _name = parts.next();
            parts.next() == Some("src") && parts.next() == Some("lib.rs") && parts.next().is_none()
        }
        None => false,
    }
}

// ---------------------------------------------------------------------
// Token matching on the code view.
// ---------------------------------------------------------------------

pub(crate) fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Substring search with identifier boundaries on both ends, so
/// `unsafe_code` never matches `unsafe` and `HashMapLike` never matches
/// `HashMap`.
pub(crate) fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token, 0).is_some()
}

pub(crate) fn find_token(code: &str, token: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(pos) = code.get(start..).and_then(|s| s.find(token)) {
        let i = start + pos;
        let j = i + token.len();
        let before_ok = i == 0 || !is_word_byte(bytes[i - 1]);
        let after_ok = j >= bytes.len() || !is_word_byte(bytes[j]);
        if before_ok && after_ok {
            return Some(i);
        }
        start = i + 1;
    }
    None
}

/// Whether the line uses an *atomic* memory ordering (`Ordering::Relaxed`
/// and friends). `std::cmp::Ordering::Less` etc. deliberately do not
/// match — comparison orderings are everywhere and harmless.
pub(crate) fn has_atomic_ordering(code: &str) -> bool {
    const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let mut from = 0;
    while let Some(i) = code.get(from..).and_then(|s| s.find("Ordering::")) {
        let after = from + i + "Ordering::".len();
        let ident: String = code[after..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if VARIANTS.contains(&ident.as_str()) {
            return true;
        }
        from = after;
    }
    false
}

/// `.unwrap()` or `.expect(` with a non-byte argument. The byte-literal
/// carve-out keeps `rrq-obs`'s JSON parser method `self.expect(b'{')`
/// (a `Result`-returning combinator, not `Option::expect`) from firing.
fn has_unwrap_or_expect(code: &str) -> bool {
    if code.contains(".unwrap()") {
        return true;
    }
    let mut from = 0;
    while let Some(i) = code.get(from..).and_then(|s| s.find(".expect(")) {
        let after = from + i + ".expect(".len();
        if !code[after..].starts_with("b'") {
            return true;
        }
        from = after;
    }
    false
}

/// Whether a justifying comment with `marker` (e.g. `SAFETY:`) covers
/// line `number`: same line, or any comment within the window above.
pub(crate) fn has_marker_near(view: &FileView, number: usize, marker: &str) -> bool {
    let lo = number.saturating_sub(COMMENT_WINDOW).max(1);
    (lo..=number).any(|n| view.line(n).comment.contains(marker))
}

// ---------------------------------------------------------------------
// The checks.
// ---------------------------------------------------------------------

/// Runs every rule over one file; returns unsuppressed raw hits.
pub fn check_file(path: &str, view: &FileView) -> Vec<RawDiag> {
    let mut out = Vec::new();
    check_no_hash_iteration(path, view, &mut out);
    check_unsafe_containment(path, view, &mut out);
    check_atomic_ordering(path, view, &mut out);
    check_wall_clock(path, view, &mut out);
    check_thread_spawn(path, view, &mut out);
    check_unwrap(path, view, &mut out);
    check_seqcst(view, &mut out);
    out.sort_by_key(|d| d.line);
    out
}

/// `Ordering::SeqCst` needs its own argument *everywhere*, tests
/// included: in this codebase SeqCst has always turned out to be a
/// placeholder for "did not think about it", and test code teaches the
/// idiom the next non-test site copies.
fn check_seqcst(view: &FileView, out: &mut Vec<RawDiag>) {
    for n in 1..=view.len() {
        let code = &view.line(n).code;
        if has_token(code, "SeqCst")
            && code.contains("Ordering::")
            && !has_marker_near(view, n, "ORDERING:")
        {
            out.push(RawDiag {
                rule: Rule::SeqCstJustified,
                line: n,
                message: "Ordering::SeqCst lacks an // ORDERING: comment arguing why nothing \
                          weaker suffices; downgrade to the weakest correct ordering or justify"
                    .to_string(),
            });
        }
    }
}

fn check_no_hash_iteration(path: &str, view: &FileView, out: &mut Vec<RawDiag>) {
    if !HASH_BAN_SCOPES.iter().any(|s| path.starts_with(s)) {
        return;
    }
    for n in 1..=view.len() {
        let code = &view.line(n).code;
        for ty in ["HashMap", "HashSet"] {
            if has_token(code, ty) {
                out.push(RawDiag {
                    rule: Rule::NoHashIteration,
                    line: n,
                    message: format!(
                        "{ty} has per-process iteration order and breaks same-seed counter \
                         determinism in this crate; use BTree{} instead",
                        &ty[4..]
                    ),
                });
            }
        }
    }
}

fn check_unsafe_containment(path: &str, view: &FileView, out: &mut Vec<RawDiag>) {
    let whitelisted = is_root(path, RootKind::Unsafe);
    if is_crate_root(path)
        && crate_of(path) != Some("obs")
        && !(1..=view.len()).any(|n| view.line(n).code.contains("forbid(unsafe_code)"))
    {
        out.push(RawDiag {
            rule: Rule::UnsafeContainment,
            line: 1,
            message: "crate root must declare #![forbid(unsafe_code)] \
                      (run `rrq-lint --fix-forbid` to insert it)"
                .to_string(),
        });
    }
    for n in 1..=view.len() {
        if !has_token(&view.line(n).code, "unsafe") {
            continue;
        }
        if !whitelisted {
            out.push(RawDiag {
                rule: Rule::UnsafeContainment,
                line: n,
                message: "unsafe code outside the annotated unsafe roots \
                          (crates/obs/src/alloc.rs, crates/obs/tests/noop_alloc.rs)"
                    .to_string(),
            });
        } else if !has_marker_near(view, n, "SAFETY:") {
            out.push(RawDiag {
                rule: Rule::UnsafeContainment,
                line: n,
                message: "unsafe site lacks a justifying // SAFETY: comment \
                          (same line or within 5 lines above)"
                    .to_string(),
            });
        }
    }
}

fn check_atomic_ordering(path: &str, view: &FileView, out: &mut Vec<RawDiag>) {
    if is_test_path(path) {
        return;
    }
    let whitelisted = is_root(path, RootKind::Ordering);
    for n in 1..=view.len() {
        if view.is_test_line(n) || !has_atomic_ordering(&view.line(n).code) {
            continue;
        }
        if !whitelisted {
            out.push(RawDiag {
                rule: Rule::AtomicOrderingJustified,
                line: n,
                message: "atomic memory orderings are confined to crates/core/src/par.rs, \
                          crates/obs/src/shared.rs and crates/obs/src/alloc.rs"
                    .to_string(),
            });
        } else if !has_marker_near(view, n, "ORDERING:") {
            out.push(RawDiag {
                rule: Rule::AtomicOrderingJustified,
                line: n,
                message: "atomic ordering lacks a justifying // ORDERING: comment \
                          (same line or within 5 lines above)"
                    .to_string(),
            });
        }
    }
}

fn check_wall_clock(path: &str, view: &FileView, out: &mut Vec<RawDiag>) {
    if is_test_path(path) || path.starts_with("crates/obs/") || is_root(path, RootKind::WallClock) {
        return;
    }
    for n in 1..=view.len() {
        if view.is_test_line(n) {
            continue;
        }
        let code = &view.line(n).code;
        if code.contains("Instant::now") || has_token(code, "SystemTime") {
            out.push(RawDiag {
                rule: Rule::NoWallClockInCounters,
                line: n,
                message: "wall-clock reads outside crates/obs and the bench runner's timed \
                          sections make counters scheduling-dependent"
                    .to_string(),
            });
        }
    }
}

fn check_thread_spawn(path: &str, view: &FileView, out: &mut Vec<RawDiag>) {
    if is_test_path(path) || is_root(path, RootKind::ThreadSpawn) {
        return;
    }
    for n in 1..=view.len() {
        if view.is_test_line(n) {
            continue;
        }
        let code = &view.line(n).code;
        if has_token(code, "thread::spawn")
            || has_token(code, "thread::scope")
            || has_token(code, "thread::Builder")
        {
            out.push(RawDiag {
                rule: Rule::NoThreadSpawnOutsidePar,
                line: n,
                message: "thread spawning is confined to the parallel engine \
                          (crates/core/src/par.rs), its worker pool \
                          (crates/core/src/pool.rs), and the bench runner's batch \
                          striping (crates/bench/src/runner.rs)"
                    .to_string(),
            });
        }
    }
}

fn check_unwrap(path: &str, view: &FileView, out: &mut Vec<RawDiag>) {
    let in_lib_src = (path.starts_with("src/") || path.contains("/src/"))
        && !is_bin_path(path)
        && !is_test_path(path);
    if !in_lib_src {
        return;
    }
    if let Some(name) = crate_of(path) {
        if UNWRAP_EXEMPT_CRATES.contains(&name) {
            return;
        }
    }
    for n in 1..=view.len() {
        if view.is_test_line(n) {
            continue;
        }
        if has_unwrap_or_expect(&view.line(n).code) {
            out.push(RawDiag {
                rule: Rule::NoUnwrapInLib,
                line: n,
                message: "unwrap()/expect() in library code is an undocumented panic site; \
                          return an error, or suppress with a reason if the panic is the \
                          designed behaviour"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("forbid(unsafe_code)", "unsafe"));
        assert!(!has_token("HashMapLike", "HashMap"));
        assert!(has_token("unsafe impl Foo {}", "unsafe"));
    }

    #[test]
    fn atomic_vs_cmp_ordering() {
        assert!(has_atomic_ordering("x.load(Ordering::Relaxed)"));
        assert!(has_atomic_ordering("std::sync::atomic::Ordering::SeqCst"));
        assert!(!has_atomic_ordering("Ordering::Less.then(Ordering::Equal)"));
        assert!(!has_atomic_ordering("use std::sync::atomic::Ordering;"));
    }

    #[test]
    fn expect_byte_combinator_is_not_option_expect() {
        assert!(has_unwrap_or_expect("x.expect(\"msg\")"));
        assert!(has_unwrap_or_expect("x.unwrap()"));
        assert!(!has_unwrap_or_expect("self.expect(b'{')?"));
        assert!(!has_unwrap_or_expect("x.unwrap_or(3)"));
    }

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/gir.rs"));
        assert!(!is_crate_root("crates/core/src/deep/lib.rs"));
    }
}
