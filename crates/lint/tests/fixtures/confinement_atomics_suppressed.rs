//! Fixture: suppression of the reachable-atomic pair of findings.

impl Gir {
    pub fn rkr(&self) {
        tally();
    }
}

fn tally() {
    // rrq-lint: allow(confinement-atomics, atomic-ordering-justified) -- fixture
    COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
