// Fixture: same clock read, carrying a reasoned suppression.
use std::time::Instant;

pub fn stamp_row() -> u64 {
    // rrq-lint: allow(no-wall-clock-in-counters) -- fixture: timestamp decorates output, never compared
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
