//! Fixture: suppressing the reconcile cross-check finding.

pub struct Funnel;

impl Funnel {
    pub fn reconcile(&self) -> Vec<&'static str> { // rrq-lint: allow(counter-census) -- fixture: refined mirrored elsewhere
        vec!["filtered"]
    }
}
