//! Fixture: `SeqCst` with no justifying comment. Unlike the base
//! atomic rule, `seqcst-justified` applies in test code too.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::SeqCst);
}

pub fn argued(counter: &AtomicU64) -> u64 {
    // ORDERING: SeqCst on purpose — the fixture proves an argued site
    // stays quiet.
    counter.load(Ordering::SeqCst)
}
