// Fixture: linted under the virtual path crates/core/src/fixture.rs.
// A suppression with a reason silences the rule at exactly one line.
// rrq-lint: allow(no-hash-iteration) -- keys are consumed unordered; never iterated
use std::collections::HashMap;

pub fn lookup_table() -> HashMap<u64, u64> { // rrq-lint: allow(no-hash-iteration) -- same contract as the import above
    // Mentioning HashMap in a comment or "HashMap" in a string is fine.
    let name = "HashMap";
    let _ = name;
    // rrq-lint: allow(no-hash-iteration) -- constructed once, drained in key-sorted order
    HashMap::new()
}
