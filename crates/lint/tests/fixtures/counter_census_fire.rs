//! Fixture: `refined` is declared and exported but missing from the
//! `merge` destructure — the census names the site and the field.

pub struct QueryStats {
    pub multiplications: u64,
    pub refined: u64,
}

impl QueryStats {
    pub fn merge(&mut self, other: &QueryStats) {
        self.multiplications += other.multiplications;
    }

    pub fn counters(&self) -> [(&'static str, u64); 2] {
        [
            ("multiplications", self.multiplications),
            ("refined", self.refined),
        ]
    }
}
