//! Fixture: `Funnel::reconcile` fails to mirror `refined` — the only
//! non-exempt counter — so the cross-check fires.

pub struct Funnel;

impl Funnel {
    pub fn reconcile(&self) -> Vec<&'static str> {
        vec!["filtered"]
    }
}
