// Fixture: linted under the virtual path crates/core/src/fixture.rs.
// HashMap in a counter-affecting crate is the PR 2 MPA bug class.
use std::collections::HashMap;

pub fn histogram() -> HashMap<u64, u64> {
    HashMap::new()
}
