//! Fixture: the inline suppression silences `seqcst-justified`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    // rrq-lint: allow(seqcst-justified) -- fixture: exercising the suppression path
    counter.fetch_add(1, Ordering::SeqCst);
}
