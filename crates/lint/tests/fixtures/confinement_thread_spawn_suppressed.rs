//! Fixture: suppression of the reachable-spawn pair of findings.

impl ParGir {
    pub fn rkr_batch(&self) {
        stripe();
    }
}

fn stripe() {
    // rrq-lint: allow(confinement-thread-spawn, no-thread-spawn-outside-par) -- fixture
    let _h = std::thread::spawn(|| {});
}
