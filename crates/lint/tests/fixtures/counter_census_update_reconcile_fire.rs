//! Fixture: `Funnel::reconcile` mirrors the tombstone and append
//! counters but not `threshold_rows_repaired` or `epoch_published` —
//! the cross-check fires once per missing mirror.

pub struct Funnel;

impl Funnel {
    pub fn reconcile(&self) -> Vec<&'static str> {
        vec!["tombstones_skipped", "appended_scanned"]
    }
}
