// Fixture: linted under the virtual path crates/baselines/src/fixture.rs
// — ad-hoc threading outside the parallel engine is how scheduling
// nondeterminism sneaks back in.
use std::thread;

pub fn fan_out() {
    let h = thread::spawn(|| 42);
    let _ = h.join();
    thread::scope(|_s| {});
}
