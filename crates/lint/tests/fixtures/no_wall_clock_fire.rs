// Fixture: linted under the virtual path crates/core/src/fixture.rs —
// a clock read in engine code makes counters a function of scheduling.
use std::time::Instant;

pub fn timed_scan() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}
