//! Fixture: one directive silences both the confinement finding and
//! the per-file wall-clock finding on the same line.

impl Gir {
    pub fn rtk(&self) {
        helper();
    }
}

fn helper() {
    // rrq-lint: allow(confinement-wall-clock, no-wall-clock-in-counters) -- fixture
    let _t = std::time::Instant::now();
}
