// Fixture: linted under the virtual path
// crates/bench/src/bin/rrq-explain.rs — the explain tool is deliberately
// not wall-clock whitelisted (a diff must be a pure function of its two
// documents) and must not spawn threads of its own.
use std::time::Instant;
use std::thread;

pub fn timed_render(doc: &str) -> (String, u128) {
    let start = Instant::now();
    let rendered = doc.to_uppercase();
    let handle = thread::spawn(move || rendered);
    (handle.join().unwrap(), start.elapsed().as_nanos())
}
