//! Fixture: suppression of `barrier-unwind-guard`.

pub fn unguarded(sync: &EpochSync) {
    // rrq-lint: allow(barrier-unwind-guard) -- fixture: the caller arms the guard
    sync.exchange(1, 2, false);
}
