// Fixture: linted under the virtual path crates/core/src/fixture.rs.
use std::time::Instant;

pub fn timed_scan() -> u128 {
    // rrq-lint: allow(no-wall-clock-in-counters) -- fixture: duration is logged, never counted
    let start = Instant::now();
    start.elapsed().as_nanos()
}
