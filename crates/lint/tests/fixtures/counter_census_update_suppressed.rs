//! Fixture: same holes as `counter_census_update_fire.rs`, but the
//! census findings land on the enumeration fns' own lines, so trailing
//! directives there silence them.

pub struct QueryStats {
    pub tombstones_skipped: u64,
    pub appended_scanned: u64,
    pub threshold_rows_repaired: u64,
    pub epoch_published: u64,
}

impl QueryStats {
    pub fn merge(&mut self, other: &QueryStats) { // rrq-lint: allow(counter-census) -- fixture: tombstones are merged by the caller
        self.appended_scanned += other.appended_scanned;
        self.threshold_rows_repaired += other.threshold_rows_repaired;
        self.epoch_published += other.epoch_published;
    }

    pub fn counters(&self) -> [(&'static str, u64); 3] { // rrq-lint: allow(counter-census) -- fixture: epoch_published is exported elsewhere
        [
            ("tombstones_skipped", self.tombstones_skipped),
            ("appended_scanned", self.appended_scanned),
            ("threshold_rows_repaired", self.threshold_rows_repaired),
        ]
    }
}
