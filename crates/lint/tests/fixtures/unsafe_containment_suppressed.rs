// Fixture: linted under the virtual path crates/types/src/fixture.rs.
pub fn read_first(v: &[u8]) -> u8 {
    // rrq-lint: allow(unsafe-containment) -- fixture exercising the suppression path
    unsafe { *v.get_unchecked(0) }
}
