//! Fixture: the update-path counters are declared, but
//! `tombstones_skipped` is missing from `merge` and `epoch_published`
//! from `counters()` — the census names each site and field.

pub struct QueryStats {
    pub tombstones_skipped: u64,
    pub appended_scanned: u64,
    pub threshold_rows_repaired: u64,
    pub epoch_published: u64,
}

impl QueryStats {
    pub fn merge(&mut self, other: &QueryStats) {
        self.appended_scanned += other.appended_scanned;
        self.threshold_rows_repaired += other.threshold_rows_repaired;
        self.epoch_published += other.epoch_published;
    }

    pub fn counters(&self) -> [(&'static str, u64); 3] {
        [
            ("tombstones_skipped", self.tombstones_skipped),
            ("appended_scanned", self.appended_scanned),
            ("threshold_rows_repaired", self.threshold_rows_repaired),
        ]
    }
}
