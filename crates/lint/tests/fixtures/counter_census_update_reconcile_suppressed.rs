//! Fixture: both missing update-counter mirrors land on `reconcile`'s
//! own line, so one trailing directive there silences the pair.

pub struct Funnel;

impl Funnel {
    pub fn reconcile(&self) -> Vec<&'static str> { // rrq-lint: allow(counter-census) -- fixture: update counters reconciled by the writer path
        vec!["tombstones_skipped", "appended_scanned"]
    }
}
