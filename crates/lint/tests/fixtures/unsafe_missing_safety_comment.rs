// Fixture: linted under the virtual path crates/obs/src/alloc.rs (the
// whitelisted file) — whitelisting alone is not enough, each site still
// needs a justifying safety comment.
pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

pub fn read_second(v: &[u8]) -> u8 {
    // SAFETY: caller guarantees v has at least two elements.
    unsafe { *v.get_unchecked(1) }
}
