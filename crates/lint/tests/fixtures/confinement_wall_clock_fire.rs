//! Fixture: a clock read transitively reachable from a query entry
//! point; the diagnostic names the call chain hop by hop.

impl Gir {
    pub fn rtk(&self) {
        helper();
    }
}

fn helper() {
    let _t = std::time::Instant::now();
}
