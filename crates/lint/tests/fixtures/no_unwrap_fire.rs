// Fixture: linted under the virtual path crates/types/src/fixture.rs —
// library panic sites must be documented or removed.
pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn second(v: &[u8]) -> u8 {
    *v.get(1).expect("fixture slice too short")
}

#[cfg(test)]
mod tests {
    // unwrap inside #[cfg(test)] is exempt — tests may panic freely.
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v = vec![1u8];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
