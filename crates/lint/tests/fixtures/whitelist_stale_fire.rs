//! Fixture: an unsafe-root file with no unsafe left in it — the root
//! entry is rot and must be reported.

pub fn all_safe_now() {}
