// Fixture: linted under the virtual path crates/types/src/fixture.rs.
// unsafe anywhere outside the whitelist is an error, SAFETY comment or
// not.
pub fn read_first(v: &[u8]) -> u8 {
    // SAFETY: caller guarantees v is non-empty (not good enough here —
    // this file is not on the unsafe whitelist).
    unsafe { *v.get_unchecked(0) }
}
