// Fixture: a hand-rolled worker pool outside crates/core/src/pool.rs.
// Persistent workers must live in the pool module so their scheduling
// (and the determinism argument of DESIGN.md §5b) stays auditable.
use std::thread;

pub fn diy_pool() {
    let workers: Vec<_> = (0..4).map(|_| thread::spawn(|| ())).collect();
    for w in workers {
        let _ = w.join();
    }
    let _builder = thread::Builder::new().name("rogue-worker".into());
}
