// Fixture: linted under a *non-whitelisted* bench path (e.g.
// crates/bench/src/table.rs) — an `Instant` read outside the timed
// modules (runner, loadgen, rrq-exp) leaks scheduling into what should
// be deterministic presentation code.
use std::time::Instant;

pub fn stamp_row() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
