//! Fixture: a rendezvous with no armed unwind guard next to one that
//! guards correctly — only the unguarded line fires.

pub fn guarded(sync: &EpochSync) {
    let _g = sync.panic_guard();
    sync.exchange(1, 2, false);
}

pub fn unguarded(sync: &EpochSync) {
    sync.exchange(1, 2, false);
}
