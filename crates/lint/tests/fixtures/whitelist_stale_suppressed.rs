pub fn all_safe_now() {} // rrq-lint: allow(whitelist-stale) -- fixture: root kept for the next PR
