// Fixture: the explain-binary sites of explain_bin_fire.rs, each
// silenced with a reasoned suppression.
use std::time::Instant;
use std::thread;

pub fn timed_render(doc: &str) -> (String, u128) {
    // rrq-lint: allow(no-wall-clock-in-counters) -- fixture: render timing is display-only
    let start = Instant::now();
    let rendered = doc.to_uppercase();
    // rrq-lint: allow(no-thread-spawn-outside-par) -- fixture: exercises the suppression path
    let handle = thread::spawn(move || rendered);
    (handle.join().unwrap(), start.elapsed().as_nanos())
}
