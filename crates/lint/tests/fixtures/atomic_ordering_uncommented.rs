// Fixture: linted under the virtual path crates/core/src/par.rs (a
// whitelisted file) — permitted sites still need justifying comments.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read(c: &AtomicU64) -> u64 {
    // ORDERING: relaxed — a monotone counter with no cross-thread
    // happens-before requirement.
    c.load(Ordering::Relaxed)
}
