//! Fixture: thread creation reachable from a query entry point,
//! outside the sanctioned parallel-engine files.

impl ParGir {
    pub fn rkr_batch(&self) {
        stripe();
    }
}

fn stripe() {
    let _h = std::thread::spawn(|| {});
}
