// Fixture: linted under a virtual non-whitelisted path.
use std::thread;

pub fn diy_pool() {
    // rrq-lint: allow(no-thread-spawn-outside-par) -- fixture: short-lived helper, joined before any query runs
    let w = thread::spawn(|| ());
    let _ = w.join();
}
