//! Fixture: linted under the virtual path crates/types/src/lib.rs — a
//! crate root without `#![forbid(unsafe_code)]` relies on convention,
//! which is exactly what the rule exists to replace.

pub fn safe_enough() -> u32 {
    1
}
