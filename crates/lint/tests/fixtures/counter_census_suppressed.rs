//! Fixture: the census finding lands on the enumeration fn's own line,
//! so a trailing directive there silences it.

pub struct QueryStats {
    pub multiplications: u64,
    pub refined: u64,
}

impl QueryStats {
    pub fn merge(&mut self, other: &QueryStats) { // rrq-lint: allow(counter-census) -- fixture: refined is booked by the caller
        self.multiplications += other.multiplications;
    }

    pub fn counters(&self) -> [(&'static str, u64); 2] {
        [
            ("multiplications", self.multiplications),
            ("refined", self.refined),
        ]
    }
}
