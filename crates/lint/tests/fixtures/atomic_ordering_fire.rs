// Fixture: linted under the virtual path crates/core/src/fixture.rs —
// atomics outside the concurrency cores are scheduling hazards.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn compare(a: i32, b: i32) -> std::cmp::Ordering {
    // cmp::Ordering must NOT fire — only atomic memory orderings do.
    a.cmp(&b).then(std::cmp::Ordering::Equal)
}
