// Fixture: linted under the virtual path crates/baselines/src/fixture.rs.
use std::thread;

pub fn fan_out() {
    // rrq-lint: allow(no-thread-spawn-outside-par) -- fixture: joined before any counter is read
    let h = thread::spawn(|| 42);
    let _ = h.join();
}
