// Fixture: linted under the virtual path crates/core/src/fixture.rs.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    // rrq-lint: allow(atomic-ordering-justified) -- fixture: a monotone counter read by no one
    c.fetch_add(1, Ordering::Relaxed)
}
