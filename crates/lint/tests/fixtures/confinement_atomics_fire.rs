//! Fixture: an unjustified atomic reachable from a query entry point.
//! `fixture.rs` is not an ordering root, so even a justifying comment
//! would leave the confinement violation standing.

impl Gir {
    pub fn rkr(&self) {
        tally();
    }
}

fn tally() {
    COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
