// Fixture: linted under the virtual path crates/types/src/fixture.rs.
pub fn first(v: &[u8]) -> u8 {
    // rrq-lint: allow(no-unwrap-in-lib) -- fixture: caller contract guarantees non-empty
    *v.first().unwrap()
}
