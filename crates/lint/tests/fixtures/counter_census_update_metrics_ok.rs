//! Fixture: a fully-booked QueryStats carrying the update-path
//! counters — `merge` and `counters` both cover every field, and every
//! FUNNEL_EXEMPT name is a real field — so only the reconcile
//! cross-check can fire.

pub struct QueryStats {
    pub multiplications: u64,
    pub bound_additions: u64,
    pub nodes_visited: u64,
    pub leaf_accesses: u64,
    pub buckets_visited: u64,
    pub tombstones_skipped: u64,
    pub appended_scanned: u64,
    pub threshold_rows_repaired: u64,
    pub epoch_published: u64,
}

impl QueryStats {
    pub fn merge(&mut self, other: &QueryStats) {
        self.multiplications += other.multiplications;
        self.bound_additions += other.bound_additions;
        self.nodes_visited += other.nodes_visited;
        self.leaf_accesses += other.leaf_accesses;
        self.buckets_visited += other.buckets_visited;
        self.tombstones_skipped += other.tombstones_skipped;
        self.appended_scanned += other.appended_scanned;
        self.threshold_rows_repaired += other.threshold_rows_repaired;
        self.epoch_published += other.epoch_published;
    }

    pub fn counters(&self) -> [(&'static str, u64); 9] {
        [
            ("multiplications", self.multiplications),
            ("bound_additions", self.bound_additions),
            ("nodes_visited", self.nodes_visited),
            ("leaf_accesses", self.leaf_accesses),
            ("buckets_visited", self.buckets_visited),
            ("tombstones_skipped", self.tombstones_skipped),
            ("appended_scanned", self.appended_scanned),
            ("threshold_rows_repaired", self.threshold_rows_repaired),
            ("epoch_published", self.epoch_published),
        ]
    }
}
