//! Fixture-based rule tests: for every rule, one fixture proving it
//! fires (with the expected line numbers) and one proving the inline
//! suppression syntax silences it. Fixtures live under
//! `tests/fixtures/` — a directory the workspace walker skips, since
//! the files violate the rules on purpose — and are linted under
//! *virtual* paths so each one lands in exactly the scope it exercises.

use rrq_lint::{fix, lint_source, lint_sources, AnalyzeOptions, Diagnostic, SUPPRESSION_RULE};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path}: {e}"))
}

fn lint_fixture(name: &str, virtual_path: &str) -> Vec<Diagnostic> {
    lint_source(virtual_path, &fixture(name))
}

/// Lints several fixtures as one workspace-shaped file set — the
/// cross-file rules (confinement, census, root liveness) need it.
fn lint_fixture_set(files: &[(&str, &str)], check_roots: bool) -> Vec<Diagnostic> {
    lint_sources(
        files
            .iter()
            .map(|(name, vpath)| (vpath.to_string(), fixture(name)))
            .collect(),
        None,
        AnalyzeOptions { check_roots },
    )
    .diagnostics
}

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

// --- no-hash-iteration ------------------------------------------------

#[test]
fn hash_iteration_fires_in_counter_affecting_crate() {
    let diags = lint_fixture("no_hash_iteration_fire.rs", "crates/core/src/fixture.rs");
    // The import, the signature and the constructor all mention HashMap.
    assert_eq!(lines_of(&diags, "no-hash-iteration"), vec![3, 5, 6]);
    assert_eq!(diags.len(), 3, "no other rule should fire: {diags:?}");
}

#[test]
fn hash_iteration_ignored_outside_scope() {
    // The same source under a non-counter-affecting crate is clean.
    let diags = lint_fixture("no_hash_iteration_fire.rs", "crates/data/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn hash_iteration_suppressions_silence_each_site() {
    let diags = lint_fixture(
        "no_hash_iteration_suppressed.rs",
        "crates/core/src/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn reverting_the_mpa_btreemap_fix_fails_the_gate() {
    // PR 2's fix replaced MPA's HashMap histogram with BTreeMap; the
    // acceptance criterion is that putting HashMap back trips rule (1).
    let regressed = "use std::collections::HashMap;\n\
                     pub struct RankHistogram { buckets: HashMap<usize, u64> }\n";
    let diags = lint_source("crates/baselines/src/mpa.rs", regressed);
    assert_eq!(lines_of(&diags, "no-hash-iteration"), vec![1, 2]);
}

// --- unsafe-containment -----------------------------------------------

#[test]
fn unsafe_outside_whitelist_fires_even_with_safety_comment() {
    let diags = lint_fixture("unsafe_containment_fire.rs", "crates/types/src/fixture.rs");
    assert_eq!(lines_of(&diags, "unsafe-containment"), vec![7]);
    assert!(diags[0].message.contains("unsafe roots"));
}

#[test]
fn unsafe_suppression_silences_the_site() {
    let diags = lint_fixture(
        "unsafe_containment_suppressed.rs",
        "crates/types/src/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn whitelisted_unsafe_still_needs_safety_comment() {
    let diags = lint_fixture(
        "unsafe_missing_safety_comment.rs",
        "crates/obs/src/alloc.rs",
    );
    assert_eq!(lines_of(&diags, "unsafe-containment"), vec![5]);
    assert!(diags[0].message.contains("SAFETY"));
}

#[test]
fn crate_root_without_forbid_fires_and_fix_forbid_repairs_it() {
    let source = fixture("forbid_missing.rs");
    let diags = lint_source("crates/types/src/lib.rs", &source);
    assert_eq!(lines_of(&diags, "unsafe-containment"), vec![1]);

    let fixed = fix::insert_forbid(&source).expect("fixture lacks the attribute");
    assert!(fixed.contains("#![forbid(unsafe_code)]"));
    let diags = lint_source("crates/types/src/lib.rs", &fixed);
    assert!(diags.is_empty(), "post-fix lint must be clean: {diags:?}");
}

// --- atomic-ordering-justified ----------------------------------------

#[test]
fn atomic_ordering_fires_outside_whitelist_but_not_on_cmp_ordering() {
    let diags = lint_fixture("atomic_ordering_fire.rs", "crates/core/src/fixture.rs");
    assert_eq!(lines_of(&diags, "atomic-ordering-justified"), vec![6]);
    assert_eq!(diags.len(), 1, "cmp::Ordering must not fire: {diags:?}");
}

#[test]
fn atomic_ordering_suppression_works() {
    let diags = lint_fixture(
        "atomic_ordering_suppressed.rs",
        "crates/core/src/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn whitelisted_atomics_still_need_ordering_comments() {
    let diags = lint_fixture("atomic_ordering_uncommented.rs", "crates/core/src/par.rs");
    assert_eq!(lines_of(&diags, "atomic-ordering-justified"), vec![6]);
    assert!(diags[0].message.contains("ORDERING"));
}

// --- no-wall-clock-in-counters ----------------------------------------

#[test]
fn wall_clock_fires_in_engine_code() {
    let diags = lint_fixture("no_wall_clock_fire.rs", "crates/core/src/fixture.rs");
    assert_eq!(lines_of(&diags, "no-wall-clock-in-counters"), vec![6]);
}

#[test]
fn wall_clock_allowed_in_obs_and_runner() {
    for path in [
        "crates/obs/src/fixture.rs",
        "crates/bench/src/runner.rs",
        "crates/bench/src/loadgen.rs",
        "crates/bench/src/bin/rrq-exp.rs",
    ] {
        let diags = lint_fixture("no_wall_clock_fire.rs", path);
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
}

#[test]
fn wall_clock_suppression_works() {
    let diags = lint_fixture("no_wall_clock_suppressed.rs", "crates/core/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_confinement_is_per_file_within_bench() {
    // The whitelist names files, not the crate: the same `Instant` read
    // fires in a presentation module but passes in the load generator.
    let diags = lint_fixture("no_wall_clock_bench_fire.rs", "crates/bench/src/table.rs");
    assert_eq!(lines_of(&diags, "no-wall-clock-in-counters"), vec![8]);
    let diags = lint_fixture("no_wall_clock_bench_fire.rs", "crates/bench/src/loadgen.rs");
    assert!(diags.is_empty(), "loadgen is timing code: {diags:?}");
}

#[test]
fn wall_clock_bench_suppression_works() {
    let diags = lint_fixture(
        "no_wall_clock_bench_suppressed.rs",
        "crates/bench/src/table.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- no-thread-spawn-outside-par --------------------------------------

#[test]
fn thread_spawn_fires_outside_par_and_runner() {
    let diags = lint_fixture("no_thread_spawn_fire.rs", "crates/baselines/src/fixture.rs");
    assert_eq!(lines_of(&diags, "no-thread-spawn-outside-par"), vec![7, 9]);
}

#[test]
fn thread_spawn_allowed_in_par_and_tests() {
    for path in [
        "crates/core/src/par.rs",
        "crates/core/src/pool.rs",
        "crates/bench/src/runner.rs",
        "crates/core/tests/fixture.rs",
        "tests/fixture.rs",
    ] {
        let diags = lint_fixture("no_thread_spawn_fire.rs", path);
        assert!(
            lines_of(&diags, "no-thread-spawn-outside-par").is_empty(),
            "{path}: {diags:?}"
        );
    }
}

#[test]
fn diy_worker_pool_fires_outside_the_pool_module() {
    let diags = lint_fixture("no_thread_spawn_pool_fire.rs", "crates/obs/src/fixture.rs");
    assert_eq!(lines_of(&diags, "no-thread-spawn-outside-par"), vec![7, 11]);
}

#[test]
fn diy_worker_pool_allowed_inside_the_pool_module() {
    let diags = lint_fixture("no_thread_spawn_pool_fire.rs", "crates/core/src/pool.rs");
    assert!(
        lines_of(&diags, "no-thread-spawn-outside-par").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn diy_worker_pool_suppression_works() {
    let diags = lint_fixture(
        "no_thread_spawn_pool_suppressed.rs",
        "crates/obs/src/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn thread_spawn_suppression_works() {
    let diags = lint_fixture(
        "no_thread_spawn_suppressed.rs",
        "crates/baselines/src/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- rrq-explain binary confinement -----------------------------------

#[test]
fn explain_binary_is_not_wall_clock_or_thread_whitelisted() {
    // `rrq-explain` compares and renders documents; unlike `rrq-exp` it
    // has no timed sections, so a clock read or a spawned thread there
    // is a bug the gate must catch.
    let diags = lint_fixture("explain_bin_fire.rs", "crates/bench/src/bin/rrq-explain.rs");
    assert_eq!(lines_of(&diags, "no-wall-clock-in-counters"), vec![9]);
    assert_eq!(lines_of(&diags, "no-thread-spawn-outside-par"), vec![11]);
    // The same source under the whitelisted driver binary keeps the
    // thread diagnostic but drops the wall-clock one — the whitelist is
    // per-file, not per-directory.
    let diags = lint_fixture("explain_bin_fire.rs", "crates/bench/src/bin/rrq-exp.rs");
    assert!(
        lines_of(&diags, "no-wall-clock-in-counters").is_empty(),
        "{diags:?}"
    );
    assert_eq!(lines_of(&diags, "no-thread-spawn-outside-par"), vec![11]);
}

#[test]
fn explain_binary_suppressions_silence_both_rules() {
    let diags = lint_fixture(
        "explain_bin_suppressed.rs",
        "crates/bench/src/bin/rrq-explain.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- no-unwrap-in-lib -------------------------------------------------

#[test]
fn unwrap_fires_in_lib_but_not_in_cfg_test_mod() {
    let diags = lint_fixture("no_unwrap_fire.rs", "crates/types/src/fixture.rs");
    assert_eq!(lines_of(&diags, "no-unwrap-in-lib"), vec![4, 8]);
}

#[test]
fn unwrap_exempt_in_tests_bins_and_bench_crate() {
    for path in [
        "crates/types/tests/fixture.rs",
        "crates/types/src/bin/fixture.rs",
        "crates/bench/src/experiments/fixture.rs",
        "tests/fixture.rs",
    ] {
        let diags = lint_fixture("no_unwrap_fire.rs", path);
        assert!(
            lines_of(&diags, "no-unwrap-in-lib").is_empty(),
            "{path}: {diags:?}"
        );
    }
}

#[test]
fn unwrap_suppression_works() {
    let diags = lint_fixture("no_unwrap_suppressed.rs", "crates/types/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// --- seqcst-justified ---------------------------------------------------

#[test]
fn seqcst_fires_in_test_code_where_the_base_atomic_rule_does_not() {
    let diags = lint_fixture("seqcst_justified_fire.rs", "crates/core/tests/fixture.rs");
    assert_eq!(lines_of(&diags, "seqcst-justified"), vec![7]);
    assert!(
        lines_of(&diags, "atomic-ordering-justified").is_empty(),
        "test paths are exempt from the base rule: {diags:?}"
    );
}

#[test]
fn seqcst_suppression_works() {
    let diags = lint_fixture(
        "seqcst_justified_suppressed.rs",
        "crates/core/tests/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- confinement (call-graph) -------------------------------------------

#[test]
fn reachable_wall_clock_fires_with_the_call_chain() {
    let diags = lint_fixture(
        "confinement_wall_clock_fire.rs",
        "crates/core/src/fixture.rs",
    );
    assert_eq!(lines_of(&diags, "confinement-wall-clock"), vec![11]);
    let msg = &diags
        .iter()
        .find(|d| d.rule == "confinement-wall-clock")
        .unwrap()
        .message;
    assert!(msg.contains("Gir::rtk -> helper"), "chain missing: {msg}");
}

#[test]
fn confinement_wall_clock_suppression_works() {
    let diags = lint_fixture(
        "confinement_wall_clock_suppressed.rs",
        "crates/core/src/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn reachable_thread_spawn_fires_with_the_call_chain() {
    let diags = lint_fixture(
        "confinement_thread_spawn_fire.rs",
        "crates/core/src/fixture.rs",
    );
    assert_eq!(lines_of(&diags, "confinement-thread-spawn"), vec![11]);
    let msg = &diags
        .iter()
        .find(|d| d.rule == "confinement-thread-spawn")
        .unwrap()
        .message;
    assert!(
        msg.contains("ParGir::rkr_batch -> stripe"),
        "chain missing: {msg}"
    );
}

#[test]
fn confinement_thread_spawn_suppression_works() {
    let diags = lint_fixture(
        "confinement_thread_spawn_suppressed.rs",
        "crates/core/src/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn reachable_unjustified_atomic_fires() {
    let diags = lint_fixture("confinement_atomics_fire.rs", "crates/core/src/fixture.rs");
    assert_eq!(lines_of(&diags, "confinement-atomics"), vec![12]);
    let msg = &diags
        .iter()
        .find(|d| d.rule == "confinement-atomics")
        .unwrap()
        .message;
    assert!(msg.contains("Gir::rkr -> tally"), "chain missing: {msg}");
}

#[test]
fn confinement_atomics_suppression_works() {
    let diags = lint_fixture(
        "confinement_atomics_suppressed.rs",
        "crates/core/src/fixture.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- barrier-unwind-guard -----------------------------------------------

#[test]
fn unguarded_rendezvous_fires_but_guarded_one_does_not() {
    let diags = lint_fixture("barrier_unwind_guard_fire.rs", "crates/core/src/pool.rs");
    assert_eq!(lines_of(&diags, "barrier-unwind-guard"), vec![10]);
    assert!(diags[0].message.contains("`unguarded`"), "{diags:?}");
}

#[test]
fn barrier_unwind_guard_suppression_works() {
    let diags = lint_fixture(
        "barrier_unwind_guard_suppressed.rs",
        "crates/core/src/pool.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- counter-census -----------------------------------------------------

#[test]
fn deleting_a_field_from_merge_fires_the_census_naming_the_site() {
    let diags = lint_fixture("counter_census_fire.rs", "crates/types/src/metrics.rs");
    assert_eq!(lines_of(&diags, "counter-census"), vec![10]);
    assert!(diags[0].message.contains("`refined`"), "{diags:?}");
    assert!(diags[0].message.contains("`merge`"), "{diags:?}");
}

#[test]
fn counter_census_suppression_works() {
    let diags = lint_fixture(
        "counter_census_suppressed.rs",
        "crates/types/src/metrics.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unmirrored_counter_fires_the_reconcile_cross_check() {
    let diags = lint_fixture_set(
        &[
            (
                "counter_census_metrics_ok.rs",
                "crates/types/src/metrics.rs",
            ),
            (
                "counter_census_reconcile_fire.rs",
                "crates/obs/src/explain.rs",
            ),
        ],
        false,
    );
    assert_eq!(lines_of(&diags, "counter-census"), vec![7]);
    let d = &diags[0];
    assert_eq!(d.path, "crates/obs/src/explain.rs");
    assert!(d.message.contains("`refined`"), "{diags:?}");
    assert!(d.message.contains("reconcile"), "{diags:?}");
}

#[test]
fn reconcile_cross_check_suppression_works() {
    let diags = lint_fixture_set(
        &[
            (
                "counter_census_metrics_ok.rs",
                "crates/types/src/metrics.rs",
            ),
            (
                "counter_census_reconcile_suppressed.rs",
                "crates/obs/src/explain.rs",
            ),
        ],
        false,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn update_counters_missing_from_merge_and_counters_fire_the_census() {
    let diags = lint_fixture(
        "counter_census_update_fire.rs",
        "crates/types/src/metrics.rs",
    );
    assert_eq!(lines_of(&diags, "counter-census"), vec![13, 19]);
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`tombstones_skipped`") && d.message.contains("`merge`")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`epoch_published`") && d.message.contains("`counters`")),
        "{diags:?}"
    );
}

#[test]
fn update_counter_census_suppression_works() {
    let diags = lint_fixture(
        "counter_census_update_suppressed.rs",
        "crates/types/src/metrics.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unmirrored_update_counters_fire_the_reconcile_cross_check() {
    let diags = lint_fixture_set(
        &[
            (
                "counter_census_update_metrics_ok.rs",
                "crates/types/src/metrics.rs",
            ),
            (
                "counter_census_update_reconcile_fire.rs",
                "crates/obs/src/explain.rs",
            ),
        ],
        false,
    );
    assert_eq!(lines_of(&diags, "counter-census"), vec![8, 8]);
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`threshold_rows_repaired`")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`epoch_published`")),
        "{diags:?}"
    );
}

#[test]
fn update_reconcile_cross_check_suppression_works() {
    let diags = lint_fixture_set(
        &[
            (
                "counter_census_update_metrics_ok.rs",
                "crates/types/src/metrics.rs",
            ),
            (
                "counter_census_update_reconcile_suppressed.rs",
                "crates/obs/src/explain.rs",
            ),
        ],
        false,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- whitelist-stale ----------------------------------------------------

#[test]
fn dead_root_file_is_reported_stale() {
    let diags = lint_fixture_set(
        &[("whitelist_stale_fire.rs", "crates/obs/src/alloc.rs")],
        true,
    );
    let alloc: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == "whitelist-stale" && d.path == "crates/obs/src/alloc.rs")
        .collect();
    // alloc.rs is both an unsafe and an atomic-ordering root — a dead
    // file rots both entries.
    assert_eq!(alloc.len(), 2, "{diags:?}");
    assert!(alloc
        .iter()
        .all(|d| d.message.contains("matches no live site")));
}

#[test]
fn whitelist_stale_suppression_works() {
    let diags = lint_fixture_set(
        &[("whitelist_stale_suppressed.rs", "crates/obs/src/alloc.rs")],
        true,
    );
    assert!(
        !diags
            .iter()
            .any(|d| d.rule == "whitelist-stale" && d.path == "crates/obs/src/alloc.rs"),
        "{diags:?}"
    );
    // Roots whose files are absent from the set still fire — stale
    // entries cannot be silenced from a file that no longer exists.
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "whitelist-stale" && d.path == "crates/core/src/par.rs"),
        "{diags:?}"
    );
}

// --- suppression hygiene ----------------------------------------------

#[test]
fn suppression_reason_is_mandatory_everywhere() {
    let src = "// rrq-lint: allow(no-unwrap-in-lib)\nlet x = y.unwrap();\n";
    let diags = lint_source("crates/types/src/fixture.rs", src);
    assert!(diags.iter().any(|d| d.rule == SUPPRESSION_RULE));
    assert!(diags.iter().any(|d| d.rule == "no-unwrap-in-lib"));
}

#[test]
fn multi_rule_directive_covers_both() {
    let src = "// rrq-lint: allow(no-unwrap-in-lib, no-wall-clock-in-counters) -- fixture\n\
               let x = std::time::Instant::now().elapsed().as_nanos() as u64; let y = z.unwrap();\n";
    let diags = lint_source("crates/types/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}
