//! The linter lints the workspace it ships in — and the workspace must
//! be clean. This is the same check `scripts/check.sh` runs; having it
//! inside `cargo test` means a violation (or a stale suppression) fails
//! the tier-1 gate even when check.sh is skipped.

use std::path::Path;

#[test]
fn whole_workspace_is_lint_clean_against_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let mut report = rrq_lint::lint_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    // Same pipeline as scripts/lint_gate.sh: findings carried in the
    // committed baseline are tolerated, stale entries are errors.
    let baseline_path = root.join("lint_baseline.txt");
    let text = std::fs::read_to_string(&baseline_path).expect("committed lint_baseline.txt");
    let baseline = rrq_lint::baseline::Baseline::parse(&text).expect("parse lint_baseline.txt");
    baseline.apply(&mut report, "lint_baseline.txt");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.is_clean(),
        "rrq-lint found {} violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

#[test]
fn fixtures_are_not_scanned_by_the_walker() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let files = rrq_lint::workspace_files(root).expect("workspace scan");
    assert!(
        files.iter().all(|(rel, _)| !rel.contains("/fixtures/")),
        "fixtures violate rules on purpose and must stay out of the walk"
    );
    // Spot-check that the walk is really workspace-wide.
    for expected in [
        "crates/core/src/gir.rs",
        "crates/obs/src/alloc.rs",
        "src/lib.rs",
        "tests/tie_semantics.rs",
    ] {
        assert!(
            files.iter().any(|(rel, _)| rel == expected),
            "walker missed {expected}"
        );
    }
}
