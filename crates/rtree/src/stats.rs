//! MBR observation metrics — the machinery behind the paper's Table 3 and
//! the leaf-access accounting of Fig. 15a.
//!
//! Table 3 indexes 100K uniform points and reports, per dimensionality:
//! the number of leaf MBRs, their average diagonal length, their average
//! shape ratio (longest edge / shortest edge), the fraction of MBRs that
//! overlap a query covering 1 % of the data space, and the average MBR
//! volume. The punchline: beyond `d ≈ 6`, *every* MBR overlaps even a tiny
//! query region, so the tree degenerates to a scan.

use crate::mbr::Mbr;
use crate::tree::RTree;

/// Aggregate statistics over the leaf MBRs of a tree (Table 3 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct MbrStats {
    /// Number of leaf MBRs ("#MBR").
    pub count: usize,
    /// Average main-diagonal length ("diagonal length").
    pub mean_diagonal: f64,
    /// Average shape ratio, ignoring degenerate MBRs ("Shape").
    pub mean_shape_ratio: f64,
    /// Average hyper-volume ("Volume").
    pub mean_volume: f64,
}

/// Computes the leaf-level MBR statistics of `tree`.
///
/// Returns zeroed statistics for an empty tree.
pub fn leaf_mbr_stats(tree: &RTree) -> MbrStats {
    let mbrs = tree.leaf_mbrs();
    if mbrs.is_empty() {
        return MbrStats {
            count: 0,
            mean_diagonal: 0.0,
            mean_shape_ratio: 0.0,
            mean_volume: 0.0,
        };
    }
    let n = mbrs.len() as f64;
    let mean_diagonal = mbrs.iter().map(Mbr::diagonal).sum::<f64>() / n;
    let mean_volume = mbrs.iter().map(Mbr::area).sum::<f64>() / n;
    let (shape_sum, shape_n) = mbrs
        .iter()
        .filter_map(Mbr::shape_ratio)
        .fold((0.0, 0usize), |(s, c), r| (s + r, c + 1));
    let mean_shape_ratio = if shape_n == 0 {
        0.0
    } else {
        shape_sum / shape_n as f64
    };
    MbrStats {
        count: mbrs.len(),
        mean_diagonal,
        mean_shape_ratio,
        mean_volume,
    }
}

/// A hypercube query covering `volume_fraction` of the data space
/// `[0, range)^d`, centred so it fits inside the space.
///
/// The cube's side is `range · volume_fraction^(1/d)` and its lower corner
/// is placed at `offset · (range − side)` per dimension with
/// `offset ∈ [0, 1]`.
///
/// # Panics
///
/// Panics unless `0 < volume_fraction <= 1` and every offset is in
/// `[0, 1]`.
pub fn fractional_volume_query(
    dim: usize,
    range: f64,
    volume_fraction: f64,
    offsets: &[f64],
) -> Mbr {
    assert!(volume_fraction > 0.0 && volume_fraction <= 1.0);
    assert_eq!(offsets.len(), dim);
    let side = range * volume_fraction.powf(1.0 / dim as f64);
    let slack = range - side;
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for &o in offsets {
        assert!((0.0..=1.0).contains(&o), "offset out of [0,1]");
        let l = o * slack;
        lo.push(l);
        hi.push(l + side);
    }
    Mbr::from_corners(lo, hi)
}

/// Fraction of leaf MBRs of `tree` that intersect `query` (Table 3's
/// "Overlaps in Query (1 %)").
pub fn overlap_fraction(tree: &RTree, query: &Mbr) -> f64 {
    let mbrs = tree.leaf_mbrs();
    if mbrs.is_empty() {
        return 0.0;
    }
    let overlapping = mbrs.iter().filter(|m| m.intersects(query)).count();
    overlapping as f64 / mbrs.len() as f64
}

/// Average [`overlap_fraction`] over `queries`.
pub fn mean_overlap_fraction<'a>(tree: &RTree, queries: impl IntoIterator<Item = &'a Mbr>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for q in queries {
        sum += overlap_fraction(tree, q);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use rrq_data::synthetic;

    fn tree(dim: usize, n: usize) -> RTree {
        let ps = synthetic::uniform_points(dim, n, 10_000.0, dim as u64).unwrap();
        RTree::bulk_load(&ps, RTreeConfig::with_max_entries(32))
    }

    #[test]
    fn stats_of_empty_tree_are_zero() {
        let ps = synthetic::uniform_points(3, 0, 10_000.0, 1).unwrap();
        let t = RTree::bulk_load(&ps, RTreeConfig::default());
        let s = leaf_mbr_stats(&t);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_volume, 0.0);
    }

    #[test]
    fn stats_are_positive_for_real_tree() {
        let t = tree(4, 3000);
        let s = leaf_mbr_stats(&t);
        assert!(s.count > 10);
        assert!(s.mean_diagonal > 0.0);
        assert!(s.mean_shape_ratio >= 1.0);
        assert!(s.mean_volume > 0.0);
    }

    #[test]
    fn diagonal_grows_with_dimensionality() {
        // Table 3's second row: diagonals grow steeply with d because each
        // leaf must span more of every axis.
        let lo = leaf_mbr_stats(&tree(3, 3000)).mean_diagonal;
        let hi = leaf_mbr_stats(&tree(12, 3000)).mean_diagonal;
        assert!(hi > 2.0 * lo, "d=12 diagonal {hi} vs d=3 {lo}");
    }

    #[test]
    fn fractional_volume_query_has_requested_volume() {
        let q = fractional_volume_query(5, 10_000.0, 0.01, &[0.5; 5]);
        let vol = q.area();
        let space = 10_000.0f64.powi(5);
        assert!((vol / space - 0.01).abs() < 1e-9);
    }

    #[test]
    fn fractional_volume_query_fits_in_space() {
        let q = fractional_volume_query(3, 100.0, 0.01, &[0.0, 0.5, 1.0]);
        assert!(q.lo().iter().all(|&v| v >= 0.0));
        assert!(q.hi().iter().all(|&v| v <= 100.0));
    }

    #[test]
    #[should_panic(expected = "offset out of")]
    fn fractional_volume_query_rejects_bad_offset() {
        fractional_volume_query(2, 1.0, 0.1, &[0.5, 1.5]);
    }

    #[test]
    fn overlap_fraction_saturates_in_high_dimensions() {
        // The Table 3 effect: at d = 3 a 1 % query overlaps a minority of
        // MBRs; by d = 12 it overlaps essentially all of them.
        let t3 = tree(3, 3000);
        let t12 = tree(12, 3000);
        let q3 = fractional_volume_query(3, 10_000.0, 0.01, &[0.5; 3]);
        let q12 = fractional_volume_query(12, 10_000.0, 0.01, &[0.5; 12]);
        let f3 = overlap_fraction(&t3, &q3);
        let f12 = overlap_fraction(&t12, &q12);
        assert!(f3 < 0.6, "low-d overlap should be partial, got {f3}");
        assert!(f12 > 0.9, "high-d overlap should saturate, got {f12}");
    }

    #[test]
    fn mean_overlap_fraction_averages() {
        let t = tree(3, 1000);
        let q1 = fractional_volume_query(3, 10_000.0, 0.01, &[0.1; 3]);
        let q2 = fractional_volume_query(3, 10_000.0, 0.01, &[0.9; 3]);
        let m = mean_overlap_fraction(&t, [&q1, &q2]);
        let direct = (overlap_fraction(&t, &q1) + overlap_fraction(&t, &q2)) / 2.0;
        assert!((m - direct).abs() < 1e-12);
        assert_eq!(mean_overlap_fraction(&t, []), 0.0);
    }
}
