//! Arena-based R\*-tree over point data.
//!
//! Implements the R\*-tree of Beckmann et al. (SIGMOD '90), which the paper
//! cites as the standard space-partitioning index: ChooseSubtree with
//! minimum overlap enlargement at the leaf level, topological split
//! (ChooseSplitAxis by margin sum, ChooseSplitIndex by overlap), and forced
//! reinsertion of the 30 % most-distant entries on first overflow per
//! level. Sort-Tile-Recursive bulk loading is provided for building large
//! static indexes quickly.

use crate::mbr::Mbr;
use rrq_obs::Recorder;
use rrq_types::{PointId, PointSet, QueryStats};

/// Index of a node in the tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// Traversal directive returned by the [`RTree::visit`] callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Recurse into the entry's children (no-op for point entries).
    Descend,
    /// Do not recurse; continue with the next entry.
    SkipSubtree,
    /// Abort the whole traversal.
    Stop,
}

/// Tuning parameters of the R\*-tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`). The paper's Table 3 uses 100-entry
    /// MBRs; the default here is 64.
    pub max_entries: usize,
    /// Minimum entries per node (`m`); R\* recommends 40 % of `M`.
    pub min_entries: usize,
    /// Number of entries removed during forced reinsertion (R\* recommends
    /// 30 % of `M`).
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// A configuration with `M = max_entries`, `m = 40 %`, reinsert
    /// `30 %`.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 4`.
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R*-tree needs at least 4 entries/node");
        let min_entries = (max_entries * 2 / 5).max(2);
        let reinsert_count = (max_entries * 3 / 10).max(1);
        Self {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self::with_max_entries(64)
    }
}

#[derive(Debug, Clone, Copy)]
enum EntryData {
    Point(PointId),
    Child(NodeId),
}

#[derive(Debug, Clone)]
struct Entry {
    mbr: Mbr,
    data: EntryData,
    /// Number of points under this entry (1 for point entries).
    count: usize,
}

#[derive(Debug)]
struct Node {
    level: u32, // 0 = leaf
    entries: Vec<Entry>,
}

impl Node {
    fn mbr(&self) -> Mbr {
        debug_assert!(!self.entries.is_empty());
        let mut mbr = self.entries[0].mbr.clone();
        for e in &self.entries[1..] {
            mbr.expand_mbr(&e.mbr);
        }
        mbr
    }

    fn count(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }
}

/// An R\*-tree over the points of a [`PointSet`].
///
/// The tree stores copies of the point coordinates inside (degenerate)
/// entry MBRs, so queries need no access to the original set.
///
/// ```
/// use rrq_rtree::{Mbr, RTree, RTreeConfig};
/// use rrq_types::{PointSet, QueryStats};
///
/// let points = PointSet::from_flat(2, 10.0, &[
///     1.0, 1.0,
///     5.0, 5.0,
///     9.0, 9.0,
/// ])?;
/// let tree = RTree::bulk_load(&points, RTreeConfig::default());
/// let mut stats = QueryStats::default();
/// let query = Mbr::from_corners(vec![0.0, 0.0], vec![6.0, 6.0]);
/// assert_eq!(tree.range_count(&query, &mut stats), 2);
/// # Ok::<(), rrq_types::RrqError>(())
/// ```
#[derive(Debug)]
pub struct RTree {
    config: RTreeConfig,
    dim: usize,
    nodes: Vec<Node>,
    root: NodeId,
    height: u32, // root level + 1; 1 = single leaf
    len: usize,
}

impl RTree {
    /// Builds a tree by inserting every point one by one (exercises the
    /// full R\* insertion machinery: ChooseSubtree, forced reinsert,
    /// topological split).
    pub fn build(points: &PointSet, config: RTreeConfig) -> Self {
        let mut tree = Self::empty(points.dim(), config);
        for (id, p) in points.iter() {
            tree.insert(id, p);
        }
        tree
    }

    /// Builds a tree with Sort-Tile-Recursive bulk loading (Leutenegger et
    /// al.): much faster for static data, well-shaped nodes.
    pub fn bulk_load(points: &PointSet, config: RTreeConfig) -> Self {
        let dim = points.dim();
        if points.is_empty() {
            return Self::empty(dim, config);
        }
        let mut nodes: Vec<Node> = Vec::new();
        // Leaf level: tile the points.
        let mut items: Vec<Entry> = points
            .iter()
            .map(|(id, p)| Entry {
                mbr: Mbr::from_point(p),
                data: EntryData::Point(id),
                count: 1,
            })
            .collect();
        let len = items.len();
        let cap = config.max_entries;
        let mut level: u32 = 0;
        loop {
            let groups = str_tile(&mut items, cap, dim);
            let mut next: Vec<Entry> = Vec::with_capacity(groups.len());
            for group in groups {
                let mbr = {
                    let mut m = group[0].mbr.clone();
                    for e in &group[1..] {
                        m.expand_mbr(&e.mbr);
                    }
                    m
                };
                let count = group.iter().map(|e| e.count).sum();
                let id = NodeId(nodes.len());
                nodes.push(Node {
                    level,
                    entries: group,
                });
                next.push(Entry {
                    mbr,
                    data: EntryData::Child(id),
                    count,
                });
            }
            if next.len() == 1 {
                let root = match next[0].data {
                    EntryData::Child(id) => id,
                    EntryData::Point(_) => unreachable!("root entry is a node"),
                };
                return Self {
                    config,
                    dim,
                    nodes,
                    root,
                    height: level + 1,
                    len,
                };
            }
            items = next;
            level += 1;
        }
    }

    fn empty(dim: usize, config: RTreeConfig) -> Self {
        let root_node = Node {
            level: 0,
            entries: Vec::new(),
        };
        Self {
            config,
            dim,
            nodes: vec![root_node],
            root: NodeId(0),
            height: 1,
            len: 0,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf node).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of nodes (for memory accounting).
    pub fn node_count(&self) -> usize {
        // Bulk-loaded trees allocate exactly; insertion-built trees may
        // hold no orphans either (splits always reuse/allocate live nodes).
        self.nodes.len()
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Inserts one point.
    ///
    /// # Panics
    ///
    /// Panics if the point's dimensionality differs from the tree's.
    pub fn insert(&mut self, id: PointId, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        let entry = Entry {
            mbr: Mbr::from_point(p),
            data: EntryData::Point(id),
            count: 1,
        };
        // One forced-reinsert opportunity per level per public insert.
        let mut reinserted = vec![false; self.height as usize];
        self.insert_entry(entry, 0, &mut reinserted);
        self.len += 1;
    }

    /// Inserts `entry` at `target_level`, handling overflow by forced
    /// reinsertion or split, growing the root if needed.
    fn insert_entry(&mut self, entry: Entry, target_level: u32, reinserted: &mut Vec<bool>) {
        let mut pending: Vec<(Entry, u32)> = vec![(entry, target_level)];
        while let Some((entry, level)) = pending.pop() {
            if let Some((split_mbr, split_node)) =
                self.insert_rec(self.root, entry, level, reinserted, &mut pending)
            {
                // Root split: grow the tree by one level.
                let old_root = self.root;
                let old_mbr = self.node(old_root).mbr();
                let old_count = self.node(old_root).count();
                let new_level = self.node(old_root).level + 1;
                let split_count = self.node(split_node).count();
                let new_root = NodeId(self.nodes.len());
                self.nodes.push(Node {
                    level: new_level,
                    entries: vec![
                        Entry {
                            mbr: old_mbr,
                            data: EntryData::Child(old_root),
                            count: old_count,
                        },
                        Entry {
                            mbr: split_mbr,
                            data: EntryData::Child(split_node),
                            count: split_count,
                        },
                    ],
                });
                self.root = new_root;
                self.height += 1;
                reinserted.resize(self.height as usize, true);
            }
        }
    }

    /// Recursive insertion; returns the (mbr, id) of a new sibling if the
    /// visited node split.
    fn insert_rec(
        &mut self,
        node_id: NodeId,
        entry: Entry,
        target_level: u32,
        reinserted: &mut [bool],
        pending: &mut Vec<(Entry, u32)>,
    ) -> Option<(Mbr, NodeId)> {
        let node_level = self.node(node_id).level;
        if node_level == target_level {
            self.nodes[node_id.0].entries.push(entry);
            return self.handle_overflow(node_id, reinserted, pending);
        }
        let child_pos = self.choose_subtree(node_id, &entry.mbr, target_level);
        let child_id = match self.node(node_id).entries[child_pos].data {
            EntryData::Child(id) => id,
            EntryData::Point(_) => unreachable!("internal node has child entries"),
        };
        let split = self.insert_rec(child_id, entry, target_level, reinserted, pending);
        // Refresh the child entry's MBR and count.
        let child_mbr = self.node(child_id).mbr();
        let child_count = self.node(child_id).count();
        {
            let e = &mut self.nodes[node_id.0].entries[child_pos];
            e.mbr = child_mbr;
            e.count = child_count;
        }
        if let Some((split_mbr, split_node)) = split {
            let split_count = self.node(split_node).count();
            self.nodes[node_id.0].entries.push(Entry {
                mbr: split_mbr,
                data: EntryData::Child(split_node),
                count: split_count,
            });
            return self.handle_overflow(node_id, reinserted, pending);
        }
        None
    }

    /// R\* ChooseSubtree: among the children of `node`, pick the best one
    /// to receive an entry destined for `target_level`.
    fn choose_subtree(&self, node_id: NodeId, mbr: &Mbr, _target_level: u32) -> usize {
        let node = self.node(node_id);
        debug_assert!(node.level > 0);
        let children_are_leaves = node.level == 1;
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, e) in node.entries.iter().enumerate() {
            let enlargement = e.mbr.enlargement(mbr);
            let area = e.mbr.area();
            let key = if children_are_leaves {
                // Minimum overlap enlargement, tie-broken by area
                // enlargement, then area.
                let mut overlap_before = 0.0;
                let mut overlap_after = 0.0;
                let grown = e.mbr.union(mbr);
                for (j, other) in node.entries.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_before += e.mbr.overlap(&other.mbr);
                    overlap_after += grown.overlap(&other.mbr);
                }
                (overlap_after - overlap_before, enlargement, area)
            } else {
                (enlargement, area, 0.0)
            };
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Overflow treatment: forced reinsert on the first overflow at a
    /// level (if not root), otherwise split. Returns a new sibling if a
    /// split happened.
    fn handle_overflow(
        &mut self,
        node_id: NodeId,
        reinserted: &mut [bool],
        pending: &mut Vec<(Entry, u32)>,
    ) -> Option<(Mbr, NodeId)> {
        if self.node(node_id).entries.len() <= self.config.max_entries {
            return None;
        }
        let level = self.node(node_id).level;
        let is_root = node_id == self.root;
        if !is_root && !reinserted[level as usize] {
            reinserted[level as usize] = true;
            self.force_reinsert(node_id, pending);
            return None;
        }
        Some(self.split(node_id))
    }

    /// Removes the `reinsert_count` entries whose centers are farthest from
    /// the node's center and schedules them for reinsertion.
    fn force_reinsert(&mut self, node_id: NodeId, pending: &mut Vec<(Entry, u32)>) {
        let level = self.node(node_id).level;
        let node_mbr = self.node(node_id).mbr();
        let entries = &mut self.nodes[node_id.0].entries;
        // Sort by center distance, descending — the farthest come first.
        entries.sort_by(|a, b| {
            let da = a.mbr.center_distance_sq(&node_mbr);
            let db = b.mbr.center_distance_sq(&node_mbr);
            // rrq-lint: allow(no-unwrap-in-lib) -- distances over loader-validated finite coordinates
            db.partial_cmp(&da).expect("finite distances")
        });
        let keep = entries.len() - self.config.reinsert_count.min(entries.len() - 1);
        let removed: Vec<Entry> = entries.drain(..entries.len() - keep).collect();
        for e in removed {
            pending.push((e, level));
        }
    }

    /// R\* topological split. Returns the new sibling's (mbr, id).
    fn split(&mut self, node_id: NodeId) -> (Mbr, NodeId) {
        let level = self.node(node_id).level;
        let mut entries = std::mem::take(&mut self.nodes[node_id.0].entries);
        let m = self.config.min_entries;
        let total = entries.len();
        debug_assert!(total > self.config.max_entries);

        // ChooseSplitAxis: minimise the margin sum over all candidate
        // distributions along each axis (entries sorted by lo and by hi).
        let mut best_axis = 0usize;
        let mut best_margin = f64::INFINITY;
        for axis in 0..self.dim {
            for by_hi in [false, true] {
                sort_entries(&mut entries, axis, by_hi);
                let margin: f64 = distributions(total, m)
                    .map(|split_at| {
                        let (a, b) = group_mbrs(&entries, split_at);
                        a.margin() + b.margin()
                    })
                    .sum();
                if margin < best_margin {
                    best_margin = margin;
                    best_axis = axis;
                }
            }
        }

        // ChooseSplitIndex on the best axis: minimise overlap, then area.
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        let mut best_split = m;
        let mut best_by_hi = false;
        for by_hi in [false, true] {
            sort_entries(&mut entries, best_axis, by_hi);
            for split_at in distributions(total, m) {
                let (a, b) = group_mbrs(&entries, split_at);
                let key = (a.overlap(&b), a.area() + b.area());
                if key < best_key {
                    best_key = key;
                    best_split = split_at;
                    best_by_hi = by_hi;
                }
            }
        }
        sort_entries(&mut entries, best_axis, best_by_hi);
        let right: Vec<Entry> = entries.drain(best_split..).collect();
        let right_mbr = {
            let mut mbr = right[0].mbr.clone();
            for e in &right[1..] {
                mbr.expand_mbr(&e.mbr);
            }
            mbr
        };
        self.nodes[node_id.0].entries = entries;
        let sibling = NodeId(self.nodes.len());
        self.nodes.push(Node {
            level,
            entries: right,
        });
        (right_mbr, sibling)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Counts points inside `query` (closed-interval semantics), recording
    /// node visits and leaf accesses in `stats`.
    pub fn range_count(&self, query: &Mbr, stats: &mut QueryStats) -> usize {
        self.range_count_rec(self.root, query, stats)
    }

    fn range_count_rec(&self, node_id: NodeId, query: &Mbr, stats: &mut QueryStats) -> usize {
        stats.nodes_visited += 1;
        let node = self.node(node_id);
        let mut count = 0usize;
        for e in &node.entries {
            if !query.intersects(&e.mbr) {
                continue;
            }
            match e.data {
                EntryData::Point(_) => {
                    stats.leaf_accesses += 1;
                    // Degenerate MBR: intersection means containment.
                    count += 1;
                }
                EntryData::Child(child) => {
                    if query.contains_mbr(&e.mbr) {
                        count += e.count;
                    } else {
                        count += self.range_count_rec(child, query, stats);
                    }
                }
            }
        }
        count
    }

    /// Collects the ids of points inside `query`.
    pub fn range_query(&self, query: &Mbr, stats: &mut QueryStats) -> Vec<PointId> {
        let mut out = Vec::new();
        self.range_query_rec(self.root, query, stats, &mut out);
        out
    }

    fn range_query_rec(
        &self,
        node_id: NodeId,
        query: &Mbr,
        stats: &mut QueryStats,
        out: &mut Vec<PointId>,
    ) {
        stats.nodes_visited += 1;
        let node = self.node(node_id);
        for e in &node.entries {
            if !query.intersects(&e.mbr) {
                continue;
            }
            match e.data {
                EntryData::Point(id) => {
                    stats.leaf_accesses += 1;
                    out.push(id);
                }
                EntryData::Child(child) => self.range_query_rec(child, query, stats, out),
            }
        }
    }

    /// Counts points whose score under `w` is strictly below `fq`,
    /// stopping early once the count reaches `threshold` (returns
    /// `threshold` in that case). This is the tree-based rank computation
    /// the BBR/MPA baselines rely on: subtrees entirely below the score
    /// plane are counted wholesale, subtrees entirely above are pruned.
    ///
    /// `stats` records node visits, leaf accesses and the multiplications
    /// spent on score evaluations of individual points.
    pub fn count_preceding(
        &self,
        w: &[f64],
        fq: f64,
        threshold: usize,
        stats: &mut QueryStats,
    ) -> usize {
        debug_assert_eq!(w.len(), self.dim);
        let mut count = 0usize;
        self.count_preceding_rec(self.root, w, fq, threshold, stats, &mut count);
        count.min(threshold)
    }

    /// [`RTree::count_preceding`] under a `rtree/count_preceding` span,
    /// additionally reporting the node-visit and leaf-access deltas of
    /// this one traversal to `rec` as counters. Identical result and
    /// identical `stats` effect; use from traced query paths.
    pub fn count_preceding_traced<R: Recorder + ?Sized>(
        &self,
        w: &[f64],
        fq: f64,
        threshold: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> usize {
        let _span = rrq_obs::span(rec, "rtree/count_preceding");
        let nodes_before = stats.nodes_visited;
        let leaves_before = stats.leaf_accesses;
        let count = self.count_preceding(w, fq, threshold, stats);
        rec.add_count("rtree_nodes_visited", stats.nodes_visited - nodes_before);
        rec.add_count("rtree_leaf_accesses", stats.leaf_accesses - leaves_before);
        count
    }

    fn count_preceding_rec(
        &self,
        node_id: NodeId,
        w: &[f64],
        fq: f64,
        threshold: usize,
        stats: &mut QueryStats,
        count: &mut usize,
    ) {
        if *count >= threshold {
            return;
        }
        stats.nodes_visited += 1;
        let node = self.node(node_id);
        for e in &node.entries {
            if *count >= threshold {
                stats.early_terminations += 1;
                return;
            }
            match e.data {
                EntryData::Point(_) => {
                    stats.leaf_accesses += 1;
                    // The entry MBR is the point itself.
                    stats.multiplications += self.dim as u64;
                    if e.mbr.score_lower(w) < fq {
                        *count += 1;
                    }
                }
                EntryData::Child(child) => {
                    // Bound the subtree's scores by its MBR corners.
                    stats.multiplications += 2 * self.dim as u64;
                    let upper = e.mbr.score_upper(w);
                    if upper < fq {
                        *count += e.count;
                        continue;
                    }
                    let lower = e.mbr.score_lower(w);
                    if lower >= fq {
                        continue; // Entire subtree scores >= fq: prune.
                    }
                    self.count_preceding_rec(child, w, fq, threshold, stats, count);
                }
            }
        }
    }

    /// Removes the point `id` located at `p`. Returns whether it was
    /// found.
    ///
    /// Implements the classic condense-tree deletion: the entry is
    /// removed from its leaf; underfull ancestors are dissolved and their
    /// surviving entries reinserted at their original level; the root is
    /// shrunk when it degenerates to a single child.
    ///
    /// # Panics
    ///
    /// Panics if `p`'s dimensionality differs from the tree's.
    pub fn remove(&mut self, id: PointId, p: &[f64]) -> bool {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        let mut path: Vec<(NodeId, usize)> = Vec::new();
        let Some(leaf_entry) = self.find_leaf(self.root, id, p, &mut path) else {
            return false;
        };
        let leaf = match path.last() {
            Some(&(parent, idx)) => match self.node(parent).entries[idx].data {
                EntryData::Child(c) => c,
                EntryData::Point(_) => unreachable!("path entries are children"),
            },
            None => self.root,
        };
        self.nodes[leaf.0].entries.swap_remove(leaf_entry);
        self.len -= 1;

        // Condense upward: dissolve underfull non-root nodes, refresh the
        // covering entries of the rest.
        let mut orphans: Vec<(Entry, u32)> = Vec::new();
        let mut child = leaf;
        for &(parent, idx) in path.iter().rev() {
            let underfull = self.node(child).entries.len() < self.config.min_entries;
            if underfull {
                let level = self.node(child).level;
                let entries = std::mem::take(&mut self.nodes[child.0].entries);
                for e in entries {
                    orphans.push((e, level));
                }
                self.nodes[parent.0].entries.swap_remove(idx);
            } else {
                let mbr = self.node(child).mbr();
                let count = self.node(child).count();
                let e = &mut self.nodes[parent.0].entries[idx];
                e.mbr = mbr;
                e.count = count;
            }
            child = parent;
        }

        // Reinsert surviving entries of dissolved nodes at their level
        // (forced reinsertion disabled during condensation).
        for (e, level) in orphans {
            let mut reinserted = vec![true; self.height as usize];
            self.insert_entry(e, level, &mut reinserted);
        }

        // Shrink a degenerate root.
        loop {
            let root_node = self.node(self.root);
            if root_node.level > 0 && root_node.entries.len() == 1 {
                match root_node.entries[0].data {
                    EntryData::Child(c) => {
                        self.root = c;
                        self.height -= 1;
                    }
                    EntryData::Point(_) => unreachable!("internal node holds children"),
                }
            } else if root_node.level > 0 && root_node.entries.is_empty() {
                // Everything deleted through condensation: reset to an
                // empty leaf root.
                self.nodes[self.root.0].level = 0;
                self.height = 1;
                break;
            } else {
                break;
            }
        }
        true
    }

    /// Locates the leaf entry of point `id` at coordinates `p`, recording
    /// the root-to-leaf path as `(node, child entry index)` pairs.
    fn find_leaf(
        &self,
        node_id: NodeId,
        id: PointId,
        p: &[f64],
        path: &mut Vec<(NodeId, usize)>,
    ) -> Option<usize> {
        let node = self.node(node_id);
        if node.level == 0 {
            return node
                .entries
                .iter()
                .position(|e| matches!(e.data, EntryData::Point(pid) if pid == id));
        }
        for (idx, e) in node.entries.iter().enumerate() {
            if !e.mbr.contains_point(p) {
                continue;
            }
            if let EntryData::Child(child) = e.data {
                path.push((node_id, idx));
                if let Some(found) = self.find_leaf(child, id, p, path) {
                    return Some(found);
                }
                path.pop();
            }
        }
        None
    }

    /// The `k` nearest neighbours of `q` by Euclidean distance,
    /// best-first (Hjaltason & Samet): returns `(id, distance)` pairs in
    /// ascending distance order. Ties are broken arbitrarily.
    ///
    /// # Panics
    ///
    /// Panics if `q`'s dimensionality differs from the tree's.
    pub fn nearest_neighbors(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
    ) -> Vec<(PointId, f64)> {
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Key(f64);
        impl Eq for Key {}
        #[allow(clippy::non_canonical_partial_ord_impl)]
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                self.0.partial_cmp(&other.0)
            }
        }
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // rrq-lint: allow(no-unwrap-in-lib) -- keys are distances over finite coordinates
                self.partial_cmp(other).expect("finite distances")
            }
        }
        enum Item {
            Node(NodeId),
            Point(PointId),
        }
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<(Reverse<Key>, usize)> = BinaryHeap::new();
        let mut items: Vec<Item> = vec![Item::Node(self.root)];
        heap.push((Reverse(Key(0.0)), 0));
        let mut out = Vec::with_capacity(k);
        while let Some((Reverse(Key(dist)), idx)) = heap.pop() {
            match items[idx] {
                Item::Point(id) => {
                    out.push((id, dist.sqrt()));
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(node_id) => {
                    stats.nodes_visited += 1;
                    for e in &self.node(node_id).entries {
                        let d2 = e.mbr.min_distance_sq(q);
                        let item = match e.data {
                            EntryData::Point(id) => {
                                stats.leaf_accesses += 1;
                                Item::Point(id)
                            }
                            EntryData::Child(c) => Item::Node(c),
                        };
                        items.push(item);
                        heap.push((Reverse(Key(d2)), items.len() - 1));
                    }
                }
            }
        }
        out
    }

    /// Generic pruned pre-order traversal over the tree's entries.
    ///
    /// The visitor receives each entry's MBR, the number of points below
    /// it, and whether it is a point entry (degenerate MBR). Its return
    /// value controls the walk: [`Visit::Descend`] recurses into child
    /// entries (meaningless for point entries), [`Visit::SkipSubtree`]
    /// prunes, [`Visit::Stop`] aborts the entire traversal.
    ///
    /// This is the hook baseline algorithms (BBR, MPA) use to implement
    /// their bespoke bound logic without the tree knowing about scores.
    pub fn visit<F>(&self, f: &mut F)
    where
        F: FnMut(&Mbr, usize, bool) -> Visit,
    {
        self.visit_rec(self.root, f);
    }

    fn visit_rec<F>(&self, node_id: NodeId, f: &mut F) -> bool
    where
        F: FnMut(&Mbr, usize, bool) -> Visit,
    {
        let node = self.node(node_id);
        for e in &node.entries {
            let is_point = matches!(e.data, EntryData::Point(_));
            match f(&e.mbr, e.count, is_point) {
                Visit::Stop => return false,
                Visit::SkipSubtree => {}
                Visit::Descend => {
                    if let EntryData::Child(child) = e.data {
                        if !self.visit_rec(child, f) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// The leaf nodes as `(MBR, member point ids)` groups — the
    /// lowest-level data grouping tree-based algorithms prune by.
    pub fn leaf_groups(&self) -> Vec<(Mbr, Vec<PointId>)> {
        let mut out = Vec::new();
        for node in &self.nodes {
            if node.level != 0 || node.entries.is_empty() {
                continue;
            }
            let ids: Vec<PointId> = node
                .entries
                .iter()
                .map(|e| match e.data {
                    EntryData::Point(id) => id,
                    EntryData::Child(_) => unreachable!("leaf holds points"),
                })
                .collect();
            out.push((node.mbr(), ids));
        }
        out
    }

    /// The MBRs of all leaf nodes (the "accessed MBRs" the paper's Table 3
    /// observes; the tree's lowest-level grouping of points).
    pub fn leaf_mbrs(&self) -> Vec<Mbr> {
        let mut out = Vec::new();
        for node in &self.nodes {
            if node.level == 0 && !node.entries.is_empty() {
                out.push(node.mbr());
            }
        }
        out
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.level == 0 && !n.entries.is_empty())
            .count()
    }

    /// Checks every structural invariant; used by the test-suite.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn validate(&self) {
        let mut seen_points = 0usize;
        self.validate_rec(self.root, self.node(self.root).level, &mut seen_points);
        assert_eq!(seen_points, self.len, "point count mismatch");
        assert_eq!(
            self.node(self.root).level + 1,
            self.height,
            "height mismatch"
        );
    }

    fn validate_rec(&self, node_id: NodeId, expected_level: u32, seen_points: &mut usize) {
        let node = self.node(node_id);
        assert_eq!(node.level, expected_level, "level mismatch");
        if node_id != self.root {
            assert!(
                node.entries.len() >= self.config.min_entries,
                "underfull node: {} < {}",
                node.entries.len(),
                self.config.min_entries
            );
        }
        assert!(
            node.entries.len() <= self.config.max_entries,
            "overfull node"
        );
        for e in &node.entries {
            assert_eq!(e.mbr.dim(), self.dim, "entry dimensionality");
            match e.data {
                EntryData::Point(_) => {
                    assert_eq!(node.level, 0, "point entry above leaf level");
                    assert_eq!(e.count, 1);
                    *seen_points += 1;
                }
                EntryData::Child(child) => {
                    assert!(node.level > 0, "child entry at leaf level");
                    let child_node = self.node(child);
                    assert_eq!(child_node.level + 1, node.level, "child level");
                    let child_mbr = child_node.mbr();
                    assert!(
                        e.mbr.contains_mbr(&child_mbr) && child_mbr.contains_mbr(&e.mbr),
                        "stale child MBR"
                    );
                    assert_eq!(e.count, child_node.count(), "stale child count");
                    self.validate_rec(child, node.level - 1, seen_points);
                }
            }
        }
    }
}

/// Candidate split positions for `total` entries with minimum fill `m`:
/// `m, m+1, …, total-m`.
fn distributions(total: usize, m: usize) -> impl Iterator<Item = usize> {
    m..=(total - m)
}

fn sort_entries(entries: &mut [Entry], axis: usize, by_hi: bool) {
    entries.sort_by(|a, b| {
        let (ka, kb) = if by_hi {
            (a.mbr.hi()[axis], b.mbr.hi()[axis])
        } else {
            (a.mbr.lo()[axis], b.mbr.lo()[axis])
        };
        // rrq-lint: allow(no-unwrap-in-lib) -- loader-validated finite coordinates always compare
        ka.partial_cmp(&kb).expect("finite coordinates")
    });
}

fn group_mbrs(entries: &[Entry], split_at: usize) -> (Mbr, Mbr) {
    let mut a = entries[0].mbr.clone();
    for e in &entries[1..split_at] {
        a.expand_mbr(&e.mbr);
    }
    let mut b = entries[split_at].mbr.clone();
    for e in &entries[split_at + 1..] {
        b.expand_mbr(&e.mbr);
    }
    (a, b)
}

/// Sort-Tile-Recursive grouping: packs `items` into groups of `cap`,
/// tiling by successive coordinates.
fn str_tile(items: &mut Vec<Entry>, cap: usize, dim: usize) -> Vec<Vec<Entry>> {
    let n = items.len();
    if n <= cap {
        return vec![std::mem::take(items)];
    }
    let n_groups = n.div_ceil(cap);
    // Number of vertical slabs: ceil(n_groups^(1/dim_remaining)) along the
    // first axis; classic STR uses sqrt for 2-d and generalises by
    // recursion. We recurse over axes.
    str_tile_rec(std::mem::take(items), cap, dim, 0, n_groups)
}

fn str_tile_rec(
    mut items: Vec<Entry>,
    cap: usize,
    dim: usize,
    axis: usize,
    n_groups: usize,
) -> Vec<Vec<Entry>> {
    if items.len() <= cap {
        return vec![items];
    }
    if axis + 1 >= dim {
        // Final axis: sort and chop into consecutive runs of `cap`.
        sort_entries(&mut items, axis, false);
        let mut out = Vec::with_capacity(items.len().div_ceil(cap));
        let mut iter = items.into_iter();
        loop {
            let chunk: Vec<Entry> = iter.by_ref().take(cap).collect();
            if chunk.is_empty() {
                break;
            }
            out.push(chunk);
        }
        return out;
    }
    // Slabs along this axis: s = ceil(n_groups^(1/(remaining axes))).
    let remaining = (dim - axis) as f64;
    let slabs = (n_groups as f64).powf(1.0 / remaining).ceil() as usize;
    let slab_size = items.len().div_ceil(slabs);
    sort_entries(&mut items, axis, false);
    let mut out = Vec::new();
    let mut iter = items.into_iter();
    loop {
        let slab: Vec<Entry> = iter.by_ref().take(slab_size).collect();
        if slab.is_empty() {
            break;
        }
        let sub_groups = slab.len().div_ceil(cap);
        out.extend(str_tile_rec(slab, cap, dim, axis + 1, sub_groups));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_data::synthetic;
    use rrq_types::dot;

    fn small_config() -> RTreeConfig {
        RTreeConfig::with_max_entries(8)
    }

    fn uniform(dim: usize, n: usize, seed: u64) -> PointSet {
        synthetic::uniform_points(dim, n, 10_000.0, seed).unwrap()
    }

    #[test]
    fn config_default_ratios() {
        let c = RTreeConfig::default();
        assert_eq!(c.max_entries, 64);
        assert_eq!(c.min_entries, 25); // 40 % of 64, floor
        assert_eq!(c.reinsert_count, 19); // 30 % of 64, floor
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn config_rejects_tiny_nodes() {
        RTreeConfig::with_max_entries(3);
    }

    #[test]
    fn empty_tree() {
        let ps = uniform(3, 0, 1);
        let tree = RTree::build(&ps, small_config());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        let mut stats = QueryStats::default();
        let q = Mbr::from_corners(vec![0.0; 3], vec![10_000.0; 3]);
        assert_eq!(tree.range_count(&q, &mut stats), 0);
    }

    #[test]
    fn insert_build_validates_across_sizes() {
        for n in [1, 7, 8, 9, 20, 100, 500, 2000] {
            let ps = uniform(3, n, n as u64);
            let tree = RTree::build(&ps, small_config());
            assert_eq!(tree.len(), n);
            tree.validate();
        }
    }

    #[test]
    fn bulk_load_validates_across_sizes() {
        for n in [1, 8, 9, 64, 65, 1000, 5000] {
            let ps = uniform(4, n, n as u64 + 77);
            let tree = RTree::bulk_load(&ps, small_config());
            assert_eq!(tree.len(), n);
            // Bulk-loaded trees may have one underfull node per level; only
            // check global count/levels via queries rather than validate().
            let q = Mbr::from_corners(vec![0.0; 4], vec![10_000.0; 4]);
            let mut stats = QueryStats::default();
            assert_eq!(tree.range_count(&q, &mut stats), n);
        }
    }

    #[test]
    fn range_count_matches_linear_scan() {
        let ps = uniform(3, 1200, 42);
        for tree in [
            RTree::build(&ps, small_config()),
            RTree::bulk_load(&ps, small_config()),
        ] {
            let q = Mbr::from_corners(
                vec![2_000.0, 3_000.0, 1_000.0],
                vec![7_000.0, 9_000.0, 6_000.0],
            );
            let expected = ps.iter().filter(|(_, p)| q.contains_point(p)).count();
            let mut stats = QueryStats::default();
            assert_eq!(tree.range_count(&q, &mut stats), expected);
            assert!(stats.nodes_visited > 0);
        }
    }

    #[test]
    fn range_query_returns_exact_ids() {
        let ps = uniform(2, 800, 7);
        let tree = RTree::build(&ps, small_config());
        let q = Mbr::from_corners(vec![0.0, 0.0], vec![3_000.0, 3_000.0]);
        let mut stats = QueryStats::default();
        let mut got = tree.range_query(&q, &mut stats);
        got.sort_unstable();
        let mut expected: Vec<PointId> = ps
            .iter()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(id, _)| id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn count_preceding_matches_oracle() {
        let ps = uniform(4, 600, 9);
        let ws = synthetic::uniform_weights(4, 10, 10).unwrap();
        let tree = RTree::build(&ps, small_config());
        for (_, w) in ws.iter() {
            let q = ps.point(PointId(17));
            let fq = dot(w, q);
            let expected = rrq_types::rank_of(&ps, w, q);
            let mut stats = QueryStats::default();
            let got = tree.count_preceding(w, fq, usize::MAX, &mut stats);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn count_preceding_early_termination_caps_at_threshold() {
        let ps = uniform(3, 2000, 11);
        let ws = synthetic::uniform_weights(3, 1, 12).unwrap();
        let w = ws.weight(rrq_types::WeightId(0));
        let tree = RTree::build(&ps, small_config());
        // Query point near the max corner precedes nearly everything.
        let q = vec![9_999.0, 9_999.0, 9_999.0];
        let fq = dot(w, &q);
        let mut stats = QueryStats::default();
        let got = tree.count_preceding(w, fq, 50, &mut stats);
        assert_eq!(got, 50, "early exit caps the count at the threshold");
        // The capped traversal does no more work than the exhaustive one
        // and records that it stopped early.
        let mut full_stats = QueryStats::default();
        let full = tree.count_preceding(w, fq, usize::MAX, &mut full_stats);
        assert!(full > 50);
        assert!(stats.nodes_visited <= full_stats.nodes_visited);
        assert!(stats.early_terminations >= 1);
    }

    #[test]
    fn count_preceding_prunes_subtrees() {
        // A weight aligned with one axis and a mid-range query leaves whole
        // subtrees above/below the plane; node visits must be well below
        // the total node count.
        let ps = uniform(2, 5000, 13);
        let tree = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(32));
        let w = [0.5, 0.5];
        let q = [5_000.0, 5_000.0];
        let fq = dot(&w, &q);
        let mut stats = QueryStats::default();
        let got = tree.count_preceding(&w, fq, usize::MAX, &mut stats);
        let expected = ps.iter().filter(|(_, p)| dot(&w, p) < fq).count();
        assert_eq!(got, expected);
        assert!(
            (stats.leaf_accesses as usize) < ps.len() / 2,
            "2-d pruning should skip most leaf accesses, got {}",
            stats.leaf_accesses
        );
    }

    #[test]
    fn leaf_mbrs_cover_all_points() {
        let ps = uniform(3, 700, 15);
        let tree = RTree::build(&ps, small_config());
        let leaves = tree.leaf_mbrs();
        assert_eq!(leaves.len(), tree.leaf_count());
        for (_, p) in ps.iter() {
            assert!(
                leaves.iter().any(|m| m.contains_point(p)),
                "point not covered by any leaf MBR"
            );
        }
    }

    #[test]
    fn duplicate_points_are_retained() {
        let mut ps = PointSet::new(2, 10.0).unwrap();
        for _ in 0..50 {
            ps.push_slice(&[5.0, 5.0]).unwrap();
        }
        let tree = RTree::build(&ps, small_config());
        tree.validate();
        let q = Mbr::from_point(&[5.0, 5.0]);
        let mut stats = QueryStats::default();
        assert_eq!(tree.range_count(&q, &mut stats), 50);
    }

    #[test]
    fn high_dimensional_build_and_query() {
        let ps = uniform(20, 500, 21);
        let tree = RTree::build(&ps, small_config());
        tree.validate();
        let ws = synthetic::uniform_weights(20, 3, 22).unwrap();
        for (_, w) in ws.iter() {
            let q = ps.point(PointId(0));
            let fq = dot(w, q);
            let mut stats = QueryStats::default();
            assert_eq!(
                tree.count_preceding(w, fq, usize::MAX, &mut stats),
                rrq_types::rank_of(&ps, w, q)
            );
        }
    }

    #[test]
    fn build_and_bulk_load_answer_identically() {
        let ps = uniform(5, 900, 23);
        let a = RTree::build(&ps, small_config());
        let b = RTree::bulk_load(&ps, small_config());
        let ws = synthetic::uniform_weights(5, 5, 24).unwrap();
        for (_, w) in ws.iter() {
            for pid in [0usize, 123, 456] {
                let q = ps.point(PointId(pid));
                let fq = dot(w, q);
                let mut s1 = QueryStats::default();
                let mut s2 = QueryStats::default();
                assert_eq!(
                    a.count_preceding(w, fq, usize::MAX, &mut s1),
                    b.count_preceding(w, fq, usize::MAX, &mut s2)
                );
            }
        }
    }

    #[test]
    fn clustered_data_builds_valid_tree() {
        let ps = synthetic::clustered_points(4, 1500, 10_000.0, 11, 0.1, 25).unwrap();
        let tree = RTree::build(&ps, small_config());
        tree.validate();
        assert_eq!(tree.len(), 1500);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn insert_rejects_wrong_dim() {
        let ps = uniform(3, 0, 1);
        let mut tree = RTree::build(&ps, small_config());
        tree.insert(PointId(0), &[1.0, 2.0]);
    }

    #[test]
    fn remove_then_queries_shrink() {
        let ps = uniform(3, 800, 41);
        let mut tree = RTree::build(&ps, small_config());
        // Remove every third point.
        let mut removed = 0usize;
        for (id, p) in ps.iter() {
            if id.0 % 3 == 0 {
                assert!(tree.remove(id, p), "point {id:?} must be found");
                removed += 1;
            }
        }
        assert_eq!(tree.len(), 800 - removed);
        tree.validate();
        // Remaining points answer correctly.
        let q = Mbr::from_corners(vec![0.0; 3], vec![10_000.0; 3]);
        let mut stats = QueryStats::default();
        assert_eq!(tree.range_count(&q, &mut stats), 800 - removed);
        let mut got = tree.range_query(&q, &mut stats);
        got.sort_unstable();
        let expected: Vec<PointId> = ps
            .iter()
            .map(|(id, _)| id)
            .filter(|id| id.0 % 3 != 0)
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let ps = uniform(2, 120, 43);
        let mut tree = RTree::build(&ps, small_config());
        for (id, p) in ps.iter() {
            assert!(tree.remove(id, p));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        let q = Mbr::from_corners(vec![0.0; 2], vec![10_000.0; 2]);
        let mut stats = QueryStats::default();
        assert_eq!(tree.range_count(&q, &mut stats), 0);
        // And the tree is reusable afterwards.
        tree.insert(PointId(0), ps.point(PointId(0)));
        assert_eq!(tree.len(), 1);
        tree.validate();
    }

    #[test]
    fn remove_missing_point_is_noop() {
        let ps = uniform(2, 50, 45);
        let mut tree = RTree::build(&ps, small_config());
        assert!(!tree.remove(PointId(999), &[1.0, 1.0]));
        assert_eq!(tree.len(), 50);
        tree.validate();
    }

    #[test]
    fn remove_and_reinsert_round_trips() {
        let ps = uniform(4, 300, 47);
        let mut tree = RTree::build(&ps, small_config());
        for (id, p) in ps.iter().take(100) {
            assert!(tree.remove(id, p));
        }
        for (id, p) in ps.iter().take(100) {
            tree.insert(id, p);
        }
        assert_eq!(tree.len(), 300);
        tree.validate();
        let w = [0.25; 4];
        let q = ps.point(PointId(50));
        let fq = dot(&w, q);
        let mut stats = QueryStats::default();
        assert_eq!(
            tree.count_preceding(&w, fq, usize::MAX, &mut stats),
            rrq_types::rank_of(&ps, &w, q)
        );
    }

    #[test]
    fn knn_matches_linear_scan() {
        let ps = uniform(3, 900, 49);
        let tree = RTree::build(&ps, small_config());
        let q = vec![5_000.0, 2_500.0, 7_500.0];
        let mut stats = QueryStats::default();
        let got = tree.nearest_neighbors(&q, 10, &mut stats);
        // Oracle: sort all by distance.
        let mut all: Vec<(PointId, f64)> = ps
            .iter()
            .map(|(id, p)| {
                let d2: f64 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (id, d2.sqrt())
            })
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert_eq!(got.len(), 10);
        for (i, (_, dist)) in got.iter().enumerate() {
            assert!((dist - all[i].1).abs() < 1e-9, "distance {i} differs");
        }
        // Best-first must prune: far fewer leaf accesses than |P|.
        assert!(
            (stats.leaf_accesses as usize) < ps.len() / 2,
            "kNN touched {} of {} leaves",
            stats.leaf_accesses,
            ps.len()
        );
    }

    #[test]
    fn knn_edge_cases() {
        let ps = uniform(2, 30, 51);
        let tree = RTree::build(&ps, small_config());
        let mut stats = QueryStats::default();
        assert!(tree
            .nearest_neighbors(&[0.0, 0.0], 0, &mut stats)
            .is_empty());
        // k > |P| returns everything, ascending.
        let all = tree.nearest_neighbors(&[0.0, 0.0], 100, &mut stats);
        assert_eq!(all.len(), 30);
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Empty tree.
        let empty = RTree::build(&uniform(2, 0, 1), small_config());
        assert!(empty
            .nearest_neighbors(&[0.0, 0.0], 5, &mut stats)
            .is_empty());
    }

    #[test]
    fn node_count_grows_with_data() {
        let small = RTree::build(&uniform(3, 50, 31), small_config());
        let large = RTree::build(&uniform(3, 5000, 31), small_config());
        assert!(large.node_count() > small.node_count());
        assert!(large.height() > small.height());
    }
}
