//! R\*-tree spatial index substrate.
//!
//! The paper's baselines (BBR for reverse top-k, MPA for reverse k-ranks)
//! are *tree-based*: they index the product set `P` (and, for BBR, the
//! preference set `W`) in R-trees and prune via minimum bounding rectangles
//! (MBRs). This crate provides that substrate from scratch:
//!
//! * [`Mbr`] — d-dimensional minimum bounding rectangles with the geometry
//!   the R\*-tree heuristics and the rank-bounding logic need (area,
//!   margin, overlap, enlargement, score bounds under a weight vector).
//! * [`RTree`] — an arena-based R\*-tree supporting one-by-one insertion
//!   with forced reinsertion (Beckmann et al., SIGMOD '90), Sort-Tile-
//!   Recursive bulk loading, range counting and score-bounded rank
//!   counting with early termination.
//! * [`stats`] — the MBR observation metrics of the paper's Table 3
//!   (#MBRs, diagonal length, shape ratio, volume, query-overlap fraction)
//!   and leaf-access accounting for Fig. 15a.
//!
//! The trees index *point* data only (the paper never indexes rectangles),
//! which keeps the entry representation compact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mbr;
pub mod stats;
mod tree;

pub use mbr::Mbr;
pub use tree::{NodeId, RTree, RTreeConfig, Visit};
