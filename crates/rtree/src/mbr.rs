//! Minimum bounding rectangles and the geometry the R\*-tree heuristics
//! and the rank-bounding logic of BBR/MPA require.

/// A d-dimensional axis-aligned minimum bounding rectangle `[lo, hi]`
/// (closed on both ends, as is conventional for R-trees over point data).
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Mbr {
    /// The degenerate MBR of a single point.
    pub fn from_point(p: &[f64]) -> Self {
        Self {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// An MBR from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners have different dimensionality or `lo > hi` in
    /// any dimension.
    pub fn from_corners(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(
            lo.iter().zip(&hi).all(|(a, b)| a <= b),
            "lo must not exceed hi"
        );
        Self { lo, hi }
    }

    /// The tight MBR of a non-empty set of points given as flat rows.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn from_points<'a>(mut points: impl Iterator<Item = &'a [f64]>) -> Self {
        // rrq-lint: allow(no-unwrap-in-lib) -- the documented # Panics contract of this constructor
        let first = points.next().expect("MBR of an empty point set");
        let mut mbr = Mbr::from_point(first);
        for p in points {
            mbr.expand_point(p);
        }
        mbr
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Grows this MBR to cover `p`.
    pub fn expand_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for ((l, h), &v) in self.lo.iter_mut().zip(&mut self.hi).zip(p) {
            if v < *l {
                *l = v;
            }
            if v > *h {
                *h = v;
            }
        }
    }

    /// Grows this MBR to cover `other`.
    pub fn expand_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dim(), self.dim());
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// The union of two MBRs.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut out = self.clone();
        out.expand_mbr(other);
        out
    }

    /// Hyper-volume (`Π (hi − lo)`), the R-tree "area".
    pub fn area(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Margin: the sum of edge lengths (the R\*-split axis criterion).
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).sum()
    }

    /// Volume of the intersection with `other` (0 when disjoint).
    pub fn overlap(&self, other: &Mbr) -> f64 {
        let mut v = 1.0;
        for i in 0..self.dim() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Whether the two MBRs share any point (closed-interval semantics).
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }

    /// Whether the MBR contains point `p`.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((l, h), v)| l <= v && v <= h)
    }

    /// Whether the MBR fully contains `other`.
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((alo, ahi), (blo, bhi))| alo <= blo && bhi <= ahi)
    }

    /// Area increase needed to also cover `other` (the classic Guttman
    /// ChooseLeaf criterion).
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Euclidean length of the main diagonal (Table 3, row 2).
    pub fn diagonal(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l) * (h - l))
            .sum::<f64>()
            .sqrt()
    }

    /// Ratio of the longest edge to the shortest (Table 3's "Shape").
    /// Returns `None` when an edge has zero length.
    pub fn shape_ratio(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for (l, h) in self.lo.iter().zip(&self.hi) {
            let e = h - l;
            min = min.min(e);
            max = max.max(e);
        }
        if min <= 0.0 {
            None
        } else {
            Some(max / min)
        }
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// Squared Euclidean distance between centers (forced-reinsert sort
    /// key).
    pub fn center_distance_sq(&self, other: &Mbr) -> f64 {
        self.center()
            .iter()
            .zip(other.center())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Lower bound of the score `f_w(p)` over every point `p` in the MBR:
    /// because all weights are non-negative, the minimum is attained at the
    /// lower corner.
    #[inline]
    pub fn score_lower(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.dim());
        rrq_types::dot(w, &self.lo)
    }

    /// Upper bound of the score `f_w(p)` over every point `p` in the MBR
    /// (attained at the upper corner).
    #[inline]
    pub fn score_upper(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.dim());
        rrq_types::dot(w, &self.hi)
    }

    /// Whether every point of this MBR dominates `q` (strictly smaller in
    /// every dimension) — used to feed the `Domin` logic of tree-based
    /// scans.
    pub fn dominates_point(&self, q: &[f64]) -> bool {
        debug_assert_eq!(q.len(), self.dim());
        self.hi.iter().zip(q).all(|(h, v)| h < v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Mbr {
        Mbr::from_corners(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn from_point_is_degenerate() {
        let m = Mbr::from_point(&[1.0, 2.0]);
        assert_eq!(m.lo(), &[1.0, 2.0]);
        assert_eq!(m.hi(), &[1.0, 2.0]);
        assert_eq!(m.area(), 0.0);
        assert_eq!(m.diagonal(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn from_corners_validates_order() {
        Mbr::from_corners(vec![1.0], vec![0.0]);
    }

    #[test]
    fn from_points_is_tight() {
        let pts: Vec<Vec<f64>> = vec![vec![1.0, 5.0], vec![3.0, 2.0], vec![2.0, 4.0]];
        let m = Mbr::from_points(pts.iter().map(|p| p.as_slice()));
        assert_eq!(m.lo(), &[1.0, 2.0]);
        assert_eq!(m.hi(), &[3.0, 5.0]);
    }

    #[test]
    fn expand_point_grows_minimally() {
        let mut m = unit_square();
        m.expand_point(&[2.0, 0.5]);
        assert_eq!(m.hi(), &[2.0, 1.0]);
        assert_eq!(m.lo(), &[0.0, 0.0]);
    }

    #[test]
    fn union_and_enlargement_agree() {
        let a = unit_square();
        let b = Mbr::from_corners(vec![2.0, 2.0], vec![3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u.area(), 9.0);
        assert_eq!(a.enlargement(&b), 8.0);
    }

    #[test]
    fn margin_sums_edges() {
        let m = Mbr::from_corners(vec![0.0, 0.0, 0.0], vec![1.0, 2.0, 3.0]);
        assert_eq!(m.margin(), 6.0);
    }

    #[test]
    fn overlap_of_disjoint_is_zero() {
        let a = unit_square();
        let b = Mbr::from_corners(vec![2.0, 2.0], vec![3.0, 3.0]);
        assert_eq!(a.overlap(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn overlap_of_partial_intersection() {
        let a = unit_square();
        let b = Mbr::from_corners(vec![0.5, 0.5], vec![1.5, 1.5]);
        assert!((a.overlap(&b) - 0.25).abs() < 1e-12);
        assert!(a.intersects(&b));
    }

    #[test]
    fn touching_edges_intersect_with_zero_overlap() {
        let a = unit_square();
        let b = Mbr::from_corners(vec![1.0, 0.0], vec![2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn containment() {
        let a = unit_square();
        let b = Mbr::from_corners(vec![0.2, 0.2], vec![0.8, 0.8]);
        assert!(a.contains_mbr(&b));
        assert!(!b.contains_mbr(&a));
        assert!(a.contains_point(&[0.5, 0.5]));
        assert!(a.contains_point(&[1.0, 1.0]), "boundary is inside");
        assert!(!a.contains_point(&[1.1, 0.5]));
    }

    #[test]
    fn diagonal_is_euclidean() {
        let m = Mbr::from_corners(vec![0.0, 0.0], vec![3.0, 4.0]);
        assert!((m.diagonal() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn shape_ratio_longest_over_shortest() {
        let m = Mbr::from_corners(vec![0.0, 0.0], vec![4.0, 1.0]);
        assert_eq!(m.shape_ratio(), Some(4.0));
        let degenerate = Mbr::from_point(&[1.0, 1.0]);
        assert_eq!(degenerate.shape_ratio(), None);
    }

    #[test]
    fn center_and_center_distance() {
        let a = unit_square();
        let b = Mbr::from_corners(vec![2.0, 0.0], vec![3.0, 1.0]);
        assert_eq!(a.center(), vec![0.5, 0.5]);
        assert_eq!(a.center_distance_sq(&b), 4.0);
    }

    #[test]
    fn score_bounds_bracket_members() {
        let m = Mbr::from_corners(vec![1.0, 2.0], vec![3.0, 4.0]);
        let w = [0.6, 0.4];
        let member = [2.0, 3.0];
        let s = rrq_types::dot(&w, &member);
        assert!(m.score_lower(&w) <= s);
        assert!(s <= m.score_upper(&w));
        assert!((m.score_lower(&w) - (0.6 + 0.8)).abs() < 1e-12);
        assert!((m.score_upper(&w) - (1.8 + 1.6)).abs() < 1e-12);
    }

    #[test]
    fn dominates_point_requires_strict_hi() {
        let m = Mbr::from_corners(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(m.dominates_point(&[2.0, 2.0]));
        assert!(!m.dominates_point(&[1.0, 2.0]), "tie on hi breaks it");
    }
}

impl Mbr {
    /// Squared Euclidean distance from point `q` to the nearest point of
    /// the MBR (0 when `q` is inside) — the kNN traversal bound.
    pub fn min_distance_sq(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.dim());
        let mut acc = 0.0;
        for ((l, h), &v) in self.lo.iter().zip(&self.hi).zip(q) {
            let d = if v < *l {
                l - v
            } else if v > *h {
                v - h
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod distance_tests {
    use super::*;

    #[test]
    fn min_distance_inside_is_zero() {
        let m = Mbr::from_corners(vec![0.0, 0.0], vec![2.0, 2.0]);
        assert_eq!(m.min_distance_sq(&[1.0, 1.0]), 0.0);
        assert_eq!(m.min_distance_sq(&[0.0, 2.0]), 0.0, "boundary is inside");
    }

    #[test]
    fn min_distance_outside_matches_geometry() {
        let m = Mbr::from_corners(vec![0.0, 0.0], vec![2.0, 2.0]);
        // Straight out along one axis.
        assert_eq!(m.min_distance_sq(&[5.0, 1.0]), 9.0);
        // Diagonal to the corner (3, 4) away from (2, 2): 1² + 2² = 5.
        assert_eq!(m.min_distance_sq(&[3.0, 4.0]), 5.0);
        // Below the box.
        assert_eq!(m.min_distance_sq(&[1.0, -2.0]), 4.0);
    }
}
