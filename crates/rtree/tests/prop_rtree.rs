//! Property-based tests: the R*-tree must agree with linear scans on every
//! query, for arbitrary data shapes, both build paths.

use proptest::prelude::*;
use rrq_rtree::{Mbr, RTree, RTreeConfig};
use rrq_types::{dot, PointId, PointSet, QueryStats};

fn point_set(dim: usize, rows: Vec<Vec<f64>>) -> PointSet {
    let mut ps = PointSet::with_capacity(dim, 1000.0, rows.len()).unwrap();
    for r in &rows {
        ps.push_slice(r).unwrap();
    }
    ps
}

fn data_strategy() -> impl Strategy<Value = (usize, Vec<Vec<f64>>)> {
    (1usize..5).prop_flat_map(|dim| {
        (
            Just(dim),
            prop::collection::vec(prop::collection::vec(0.0f64..999.0, dim), 1..120),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both build paths index every point and validate (insertion path) /
    /// count correctly (both paths).
    #[test]
    fn trees_index_everything((dim, rows) in data_strategy()) {
        let ps = point_set(dim, rows);
        let built = RTree::build(&ps, RTreeConfig::with_max_entries(5));
        built.validate();
        prop_assert_eq!(built.len(), ps.len());
        let bulk = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(5));
        prop_assert_eq!(bulk.len(), ps.len());
        let everything = Mbr::from_corners(vec![0.0; dim], vec![1000.0; dim]);
        let mut s = QueryStats::default();
        prop_assert_eq!(built.range_count(&everything, &mut s), ps.len());
        prop_assert_eq!(bulk.range_count(&everything, &mut s), ps.len());
    }

    /// Range counts agree with a linear filter for arbitrary boxes.
    #[test]
    fn range_count_agrees_with_scan(
        (dim, rows) in data_strategy(),
        corners in prop::collection::vec((0.0f64..999.0, 0.0f64..999.0), 1..5),
    ) {
        let ps = point_set(dim, rows);
        let tree = RTree::build(&ps, RTreeConfig::with_max_entries(6));
        for (a, b) in corners {
            let lo: Vec<f64> = (0..dim).map(|i| a.min(b) * (1.0 + 0.01 * i as f64).min(1.0)).collect();
            let hi: Vec<f64> = (0..dim).map(|_| a.max(b)).collect();
            if lo.iter().zip(&hi).any(|(l, h)| l > h) { continue; }
            let q = Mbr::from_corners(lo, hi);
            let expected = ps.iter().filter(|(_, p)| q.contains_point(p)).count();
            let mut s = QueryStats::default();
            prop_assert_eq!(tree.range_count(&q, &mut s), expected);
        }
    }

    /// count_preceding equals the definition-level rank for arbitrary data
    /// and query points.
    #[test]
    fn count_preceding_agrees_with_rank(
        (dim, rows) in data_strategy(),
        qidx in 0usize..120,
        wseed in 1u64..100,
    ) {
        let ps = point_set(dim, rows);
        let tree = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(5));
        let mut w: Vec<f64> = (0..dim).map(|i| ((wseed + i as u64) % 5 + 1) as f64).collect();
        let s: f64 = w.iter().sum();
        for x in &mut w { *x /= s; }
        let q = ps.point(PointId(qidx % ps.len())).to_vec();
        let fq = dot(&w, &q);
        let mut stats = QueryStats::default();
        let got = tree.count_preceding(&w, fq, usize::MAX, &mut stats);
        prop_assert_eq!(got, rrq_types::rank_of(&ps, &w, &q));
    }

    /// Thresholded count_preceding is min(threshold, true rank).
    #[test]
    fn count_preceding_threshold_semantics(
        (dim, rows) in data_strategy(),
        threshold in 0usize..50,
    ) {
        let ps = point_set(dim, rows);
        let tree = RTree::build(&ps, RTreeConfig::with_max_entries(5));
        let w: Vec<f64> = {
            let mut v = vec![1.0; dim];
            let s: f64 = v.iter().sum();
            for x in &mut v { *x /= s; }
            v
        };
        let q = vec![500.0; dim];
        let fq = dot(&w, &q);
        let rank = ps.iter().filter(|(_, p)| dot(&w, p) < fq).count();
        let mut stats = QueryStats::default();
        let got = tree.count_preceding(&w, fq, threshold, &mut stats);
        prop_assert_eq!(got, rank.min(threshold));
    }

    /// Deleting an arbitrary subset leaves a valid tree answering
    /// correctly for the survivors.
    #[test]
    fn deletion_preserves_correctness(
        (dim, rows) in data_strategy(),
        mask in prop::collection::vec(any::<bool>(), 120),
    ) {
        let ps = point_set(dim, rows);
        let mut tree = RTree::build(&ps, RTreeConfig::with_max_entries(5));
        let mut kept = Vec::new();
        for (id, p) in ps.iter() {
            if mask[id.0 % mask.len()] {
                prop_assert!(tree.remove(id, p));
            } else {
                kept.push(id);
            }
        }
        tree.validate();
        prop_assert_eq!(tree.len(), kept.len());
        let everything = Mbr::from_corners(vec![0.0; dim], vec![1000.0; dim]);
        let mut s = QueryStats::default();
        let mut got = tree.range_query(&everything, &mut s);
        got.sort_unstable();
        prop_assert_eq!(got, kept);
    }

    /// kNN distances agree with a linear scan for arbitrary data.
    #[test]
    fn knn_agrees_with_scan((dim, rows) in data_strategy(), k in 1usize..10) {
        let ps = point_set(dim, rows);
        let tree = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(5));
        let q = vec![500.0; dim];
        let mut s = QueryStats::default();
        let got = tree.nearest_neighbors(&q, k, &mut s);
        let mut all: Vec<f64> = ps
            .iter()
            .map(|(_, p)| {
                p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            })
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got.len(), k.min(ps.len()));
        for (i, (_, d)) in got.iter().enumerate() {
            prop_assert!((d - all[i]).abs() < 1e-9);
        }
    }

    /// Leaf MBRs jointly cover every indexed point.
    #[test]
    fn leaves_cover_points((dim, rows) in data_strategy()) {
        let ps = point_set(dim, rows);
        let tree = RTree::build(&ps, RTreeConfig::with_max_entries(5));
        let leaves = tree.leaf_mbrs();
        for (_, p) in ps.iter() {
            prop_assert!(leaves.iter().any(|m| m.contains_point(p)));
        }
    }
}
