//! Property-style tests: the R*-tree must agree with linear scans on
//! every query, for arbitrary data shapes, both build paths. Cases come
//! from seeded deterministic sweeps (the offline build has no `proptest`).

use rrq_data::rng::{Rng, StdRng};
use rrq_rtree::{Mbr, RTree, RTreeConfig};
use rrq_types::{dot, PointId, PointSet, QueryStats};

const CASES: usize = 64;

fn point_set(dim: usize, rows: Vec<Vec<f64>>) -> PointSet {
    let mut ps = PointSet::with_capacity(dim, 1000.0, rows.len()).unwrap();
    for r in &rows {
        ps.push_slice(r).unwrap();
    }
    ps
}

fn random_data(rng: &mut StdRng) -> (usize, Vec<Vec<f64>>) {
    let dim = rng.gen_range(1..5);
    let n = rng.gen_range(1..120);
    let rows = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_f64() * 999.0).collect())
        .collect();
    (dim, rows)
}

/// Both build paths index every point and validate (insertion path) /
/// count correctly (both paths).
#[test]
fn trees_index_everything() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0001);
    for _ in 0..CASES {
        let (dim, rows) = random_data(&mut rng);
        let ps = point_set(dim, rows);
        let built = RTree::build(&ps, RTreeConfig::with_max_entries(5));
        built.validate();
        assert_eq!(built.len(), ps.len());
        let bulk = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(5));
        assert_eq!(bulk.len(), ps.len());
        let everything = Mbr::from_corners(vec![0.0; dim], vec![1000.0; dim]);
        let mut s = QueryStats::default();
        assert_eq!(built.range_count(&everything, &mut s), ps.len());
        assert_eq!(bulk.range_count(&everything, &mut s), ps.len());
    }
}

/// Range counts agree with a linear filter for arbitrary boxes.
#[test]
fn range_count_agrees_with_scan() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0002);
    for _ in 0..CASES {
        let (dim, rows) = random_data(&mut rng);
        let ps = point_set(dim, rows);
        let tree = RTree::build(&ps, RTreeConfig::with_max_entries(6));
        let n_boxes = rng.gen_range(1..5);
        for _ in 0..n_boxes {
            let a = rng.gen_f64() * 999.0;
            let b = rng.gen_f64() * 999.0;
            let lo: Vec<f64> = (0..dim)
                .map(|i| a.min(b) * (1.0 + 0.01 * i as f64).min(1.0))
                .collect();
            let hi: Vec<f64> = (0..dim).map(|_| a.max(b)).collect();
            if lo.iter().zip(&hi).any(|(l, h)| l > h) {
                continue;
            }
            let q = Mbr::from_corners(lo, hi);
            let expected = ps.iter().filter(|(_, p)| q.contains_point(p)).count();
            let mut s = QueryStats::default();
            assert_eq!(tree.range_count(&q, &mut s), expected);
        }
    }
}

/// count_preceding equals the definition-level rank for arbitrary data
/// and query points.
#[test]
fn count_preceding_agrees_with_rank() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0003);
    for _ in 0..CASES {
        let (dim, rows) = random_data(&mut rng);
        let qidx = rng.gen_range(0..120);
        let wseed = 1 + rng.gen_range(0..99) as u64;
        let ps = point_set(dim, rows);
        let tree = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(5));
        let mut w: Vec<f64> = (0..dim)
            .map(|i| ((wseed + i as u64) % 5 + 1) as f64)
            .collect();
        let s: f64 = w.iter().sum();
        for x in &mut w {
            *x /= s;
        }
        let q = ps.point(PointId(qidx % ps.len())).to_vec();
        let fq = dot(&w, &q);
        let mut stats = QueryStats::default();
        let got = tree.count_preceding(&w, fq, usize::MAX, &mut stats);
        assert_eq!(got, rrq_types::rank_of(&ps, &w, &q));
    }
}

/// Thresholded count_preceding is min(threshold, true rank).
#[test]
fn count_preceding_threshold_semantics() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0004);
    for _ in 0..CASES {
        let (dim, rows) = random_data(&mut rng);
        let threshold = rng.gen_range(0..50);
        let ps = point_set(dim, rows);
        let tree = RTree::build(&ps, RTreeConfig::with_max_entries(5));
        let w: Vec<f64> = {
            let mut v = vec![1.0; dim];
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            v
        };
        let q = vec![500.0; dim];
        let fq = dot(&w, &q);
        let rank = ps.iter().filter(|(_, p)| dot(&w, p) < fq).count();
        let mut stats = QueryStats::default();
        let got = tree.count_preceding(&w, fq, threshold, &mut stats);
        assert_eq!(got, rank.min(threshold));
    }
}

/// Deleting an arbitrary subset leaves a valid tree answering correctly
/// for the survivors.
#[test]
fn deletion_preserves_correctness() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0005);
    for _ in 0..CASES {
        let (dim, rows) = random_data(&mut rng);
        let mask: Vec<bool> = (0..120).map(|_| rng.next_u64() & 1 == 1).collect();
        let ps = point_set(dim, rows);
        let mut tree = RTree::build(&ps, RTreeConfig::with_max_entries(5));
        let mut kept = Vec::new();
        for (id, p) in ps.iter() {
            if mask[id.0 % mask.len()] {
                assert!(tree.remove(id, p));
            } else {
                kept.push(id);
            }
        }
        tree.validate();
        assert_eq!(tree.len(), kept.len());
        let everything = Mbr::from_corners(vec![0.0; dim], vec![1000.0; dim]);
        let mut s = QueryStats::default();
        let mut got = tree.range_query(&everything, &mut s);
        got.sort_unstable();
        assert_eq!(got, kept);
    }
}

/// kNN distances agree with a linear scan for arbitrary data.
#[test]
fn knn_agrees_with_scan() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0006);
    for _ in 0..CASES {
        let (dim, rows) = random_data(&mut rng);
        let k = rng.gen_range(1..10);
        let ps = point_set(dim, rows);
        let tree = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(5));
        let q = vec![500.0; dim];
        let mut s = QueryStats::default();
        let got = tree.nearest_neighbors(&q, k, &mut s);
        let mut all: Vec<f64> = ps
            .iter()
            .map(|(_, p)| {
                p.iter()
                    .zip(&q)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got.len(), k.min(ps.len()));
        for (i, (_, d)) in got.iter().enumerate() {
            assert!((d - all[i]).abs() < 1e-9);
        }
    }
}

/// Leaf MBRs jointly cover every indexed point.
#[test]
fn leaves_cover_points() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0007);
    for _ in 0..CASES {
        let (dim, rows) = random_data(&mut rng);
        let ps = point_set(dim, rows);
        let tree = RTree::build(&ps, RTreeConfig::with_max_entries(5));
        let leaves = tree.leaf_mbrs();
        for (_, p) in ps.iter() {
            assert!(leaves.iter().any(|m| m.contains_point(p)));
        }
    }
}

/// Four threads running `count_preceding_traced` against one
/// `SharedRecorder` must merge to the metrics of a sequential
/// `MetricsRecorder` run: identical counts, counters
/// (`rtree_nodes_visited` / `rtree_leaf_accesses`), and span calls.
#[test]
fn concurrent_traced_count_preceding_merges_exactly() {
    use rrq_obs::{MetricsRecorder, SharedRecorder};

    let mut rng = StdRng::seed_from_u64(0x47EE_0009);
    let (dim, rows) = (3, {
        let mut rows = Vec::new();
        for _ in 0..600 {
            rows.push((0..3).map(|_| rng.gen_range(0..1000) as f64).collect());
        }
        rows
    });
    let ps = point_set(dim, rows);
    let tree = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(8));
    let w = vec![0.5, 0.3, 0.2];
    let queries: Vec<f64> = (0..20)
        .map(|i| dot(&w, ps.point(PointId(i * 13 % ps.len()))))
        .collect();

    let seq_rec = MetricsRecorder::new();
    let mut seq_stats = QueryStats::default();
    let seq_counts: Vec<usize> = queries
        .iter()
        .map(|&fq| tree.count_preceding_traced(&w, fq, usize::MAX, &mut seq_stats, &seq_rec))
        .collect();

    let par_rec = SharedRecorder::new();
    let threads = 4;
    let (par_stats, par_counts) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (par_rec, tree, w, queries) = (&par_rec, &tree, &w, &queries);
                s.spawn(move || {
                    let mut stats = QueryStats::default();
                    let counts: Vec<(usize, usize)> = queries
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % threads == t)
                        .map(|(i, &fq)| {
                            (
                                i,
                                tree.count_preceding_traced(w, fq, usize::MAX, &mut stats, par_rec),
                            )
                        })
                        .collect();
                    (stats, counts)
                })
            })
            .collect();
        let mut stats = QueryStats::default();
        let mut indexed = Vec::new();
        for h in handles {
            let (s, c) = h.join().expect("worker panicked");
            stats.merge(&s);
            indexed.extend(c);
        }
        indexed.sort_by_key(|(i, _)| *i);
        (
            stats,
            indexed.into_iter().map(|(_, c)| c).collect::<Vec<_>>(),
        )
    });

    assert_eq!(seq_counts, par_counts);
    assert_eq!(seq_stats, par_stats);
    assert_eq!(
        seq_rec.counter("rtree_nodes_visited"),
        par_rec.counter("rtree_nodes_visited")
    );
    assert_eq!(
        seq_rec.counter("rtree_leaf_accesses"),
        par_rec.counter("rtree_leaf_accesses")
    );
    let seq_span = seq_rec
        .phases()
        .into_iter()
        .find(|p| p.path == "rtree/count_preceding")
        .expect("span recorded");
    let par_span = par_rec
        .phases()
        .into_iter()
        .find(|p| p.path == "rtree/count_preceding")
        .expect("span recorded");
    assert_eq!(seq_span.calls, par_span.calls);
    assert_eq!(seq_span.calls, queries.len() as u64);
}
