//! # reverse-rank
//!
//! Reverse rank query processing with the **Grid-index (GIR) algorithm**
//! — a from-scratch Rust reproduction of Dong, Chen, Furuse, Yu &
//! Kitagawa, *"Grid-Index Algorithm for Reverse Rank Queries"*, EDBT
//! 2017.
//!
//! Given a set of products `P` (vectors of non-negative attributes,
//! smaller = better) and a set of user preferences `W` (non-negative
//! weights summing to 1), the score of a product under a preference is
//! the inner product `f_w(p) = Σ w[i]·p[i]`. Two queries identify the
//! customers a given product `q` matters to:
//!
//! * **Reverse top-k** ([`RtkQuery`]): every `w ∈ W` that ranks `q`
//!   within its top-k.
//! * **Reverse k-ranks** ([`RkrQuery`]): the `k` preferences ranking `q`
//!   best (never empty, even for unpopular products).
//!
//! ## Quick start
//!
//! ```
//! use reverse_rank::prelude::*;
//!
//! // Products: price-like attributes in [0, 10).
//! let products = PointSet::from_flat(2, 10.0, &[
//!     6.0, 7.0,  // p0
//!     2.0, 3.0,  // p1
//!     1.0, 6.0,  // p2
//! ])?;
//! // User preferences (each row sums to 1).
//! let users = WeightSet::from_flat(2, &[
//!     0.8, 0.2,
//!     0.3, 0.7,
//! ])?;
//!
//! let gir = Gir::with_defaults(&products, &users);
//! let mut stats = QueryStats::default();
//!
//! // Which users would see p1 in their top-1?
//! let q = products.point(PointId(1)).to_vec();
//! let fans = gir.reverse_top_k(&q, 1, &mut stats);
//! assert!(fans.contains(WeightId(1)));
//!
//! // The single user ranking p0 best:
//! let best = gir.reverse_k_ranks(&q, 1, &mut stats);
//! assert_eq!(best.len(), 1);
//! # Ok::<(), reverse_rank::RrqError>(())
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | vectors, data sets, scoring, oracles, metrics |
//! | [`data`] | synthetic + simulated-real workload generators |
//! | [`rtree`] | R\*-tree substrate used by the tree-based baselines |
//! | [`baselines`] | NAIVE, SIM, BBR, MPA |
//! | [`core`] | Grid-index, GIR, performance model, extensions |
//! | [`obs`] | recorders, span tracing, latency histograms, exporters |
//!
//! See `DESIGN.md` for the paper↔code map and `EXPERIMENTS.md` for
//! reproduction results; the `rrq-exp` binary regenerates every table
//! and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rrq_baselines as baselines;
pub use rrq_core as core;
pub use rrq_data as data;
pub use rrq_obs as obs;
pub use rrq_rtree as rtree;
pub use rrq_types as types;

pub use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Naive, Rta, Sim};
pub use rrq_core::{
    pool_scope, AdaptiveGrid, Aggregate, BoundMode, Gir, GirConfig, Grid, ParConfig, ParGir,
    PoolError, PoolStats, SparseGir, WorkerPool,
};
pub use rrq_obs::{LogHistogram, MetricsRecorder, NoopRecorder, Recorder};
pub use rrq_types::{
    KBestHeap, Point, PointId, PointSet, QueryStats, RkrEntry, RkrQuery, RkrResult, RrqError,
    RrqResult, RtkQuery, RtkResult, Weight, WeightId, WeightSet,
};

/// Everything needed for typical use, importable in one line.
pub mod prelude {
    pub use crate::{
        Gir, GirConfig, MetricsRecorder, Naive, ParConfig, ParGir, PointId, PointSet, QueryStats,
        Recorder, RkrQuery, RtkQuery, Sim, WeightId, WeightSet,
    };
}
