//! Integration tests for the extension features: batch queries,
//! aggregate reverse rank, the auto-tuned constructor, and CSV loading.

use reverse_rank::core::arr::aggregate_reverse_k_ranks_naive;
use reverse_rank::data::{io, synthetic};
use reverse_rank::prelude::*;
use reverse_rank::Aggregate;

#[test]
fn batch_queries_match_singletons() {
    let p = synthetic::uniform_points(4, 400, 10_000.0, 1).unwrap();
    let w = synthetic::uniform_weights(4, 100, 2).unwrap();
    let gir = Gir::with_defaults(&p, &w);
    let queries: Vec<Vec<f64>> = (0..4).map(|i| p.point(PointId(i * 100)).to_vec()).collect();
    let mut batch_stats = QueryStats::default();
    let batch = gir.reverse_top_k_batch(&queries, 10, &mut batch_stats);
    assert_eq!(batch.len(), 4);
    for (q, r) in queries.iter().zip(&batch) {
        let mut s = QueryStats::default();
        assert_eq!(&gir.reverse_top_k(q, 10, &mut s), r);
    }
    let rkr_batch = gir.reverse_k_ranks_batch(&queries, 10, &mut batch_stats);
    for (q, r) in queries.iter().zip(&rkr_batch) {
        let mut s = QueryStats::default();
        assert_eq!(&gir.reverse_k_ranks(q, 10, &mut s), r);
    }
}

#[test]
fn aggregate_bundle_via_facade() {
    let p = synthetic::uniform_points(3, 300, 10_000.0, 3).unwrap();
    let w = synthetic::uniform_weights(3, 80, 4).unwrap();
    let gir = Gir::with_defaults(&p, &w);
    let bundle: Vec<Vec<f64>> = vec![
        p.point(PointId(10)).to_vec(),
        p.point(PointId(200)).to_vec(),
    ];
    for agg in [Aggregate::Sum, Aggregate::Max] {
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            gir.aggregate_reverse_k_ranks(&bundle, 7, agg, &mut s1),
            aggregate_reverse_k_ranks_naive(&p, &w, &bundle, 7, agg, &mut s2)
        );
    }
}

#[test]
fn auto_constructor_picks_theorem1_partitions() {
    let p = synthetic::uniform_points(20, 200, 10_000.0, 5).unwrap();
    let w = synthetic::uniform_weights(20, 50, 6).unwrap();
    let gir = Gir::auto(&p, &w, 0.01);
    // Paper example: d = 20, eps = 1 % → n = 32.
    assert_eq!(gir.grid().partitions(), 32);
    // And it answers correctly.
    let naive = Naive::new(&p, &w);
    let q = p.point(PointId(7)).to_vec();
    let mut s1 = QueryStats::default();
    let mut s2 = QueryStats::default();
    assert_eq!(
        gir.reverse_top_k(&q, 5, &mut s1),
        naive.reverse_top_k(&q, 5, &mut s2)
    );
}

#[test]
fn csv_round_trip_drives_queries() {
    let dir = std::env::temp_dir().join(format!("rrq_ext_csv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p_path = dir.join("products.csv");
    let w_path = dir.join("prefs.csv");
    std::fs::write(&p_path, "# price, battery\n100, 3\n40, 9\n70, 5\n").unwrap();
    std::fs::write(&w_path, "3 1\n1 3\n").unwrap();
    let p = io::read_points_csv(&p_path, 1000.0).unwrap();
    let w = io::read_weights_csv(&w_path, true).unwrap();
    assert_eq!(p.len(), 3);
    assert_eq!(w.len(), 2);
    let gir = Gir::with_defaults(&p, &w);
    let mut s = QueryStats::default();
    // Product 1 (40, 9) wins for price-weighted users.
    let q = p.point(PointId(1)).to_vec();
    let fans = gir.reverse_top_k(&q, 1, &mut s);
    assert!(fans.contains(WeightId(0)), "price-focused user favours it");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sparse_gir_wins_on_sparse_workloads() {
    // The §7 extension's stated purpose: users interested in few
    // attributes. SparseGir must do strictly less bound work.
    let p = synthetic::uniform_points(16, 1500, 10_000.0, 7).unwrap();
    let w = synthetic::sparse_weights(16, 300, 2, 8).unwrap();
    let dense = Gir::with_defaults(&p, &w);
    let sparse = reverse_rank::SparseGir::new(&p, &w, 32);
    let q = p.point(PointId(700)).to_vec();
    let mut s_dense = QueryStats::default();
    let mut s_sparse = QueryStats::default();
    let a = dense.reverse_k_ranks(&q, 20, &mut s_dense);
    let b = sparse.reverse_k_ranks(&q, 20, &mut s_sparse);
    assert_eq!(a, b);
    assert!(
        s_sparse.bound_additions * 3 < s_dense.bound_additions,
        "sparse {} vs dense {}",
        s_sparse.bound_additions,
        s_dense.bound_additions
    );
}
