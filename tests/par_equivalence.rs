//! Differential test harness for the parallel query engine and its
//! persistent worker pool.
//!
//! The contract under test (DESIGN.md §5b): for every bound-sharing mode,
//! worker count, epoch size, grid configuration and substrate (scoped
//! threads vs a long-lived [`WorkerPool`]), the parallel engine returns
//! results **byte-identical** to the sequential scan — and in the
//! deterministic modes (`Local`, `Epoch`) the full [`QueryStats`]
//! counters are an exact function of `(data, query, shards, epoch)` too,
//! independent of which substrate executed the shards.
//!
//! Workloads are seeded through [`SplitMix64`] so every derived dataset,
//! query choice and configuration sweep is reproducible from one root
//! seed.

use reverse_rank::data::{DataSpec, PointDistribution, SplitMix64, WeightDistribution};
use reverse_rank::obs::SharedRecorder;
use reverse_rank::{
    pool_scope, BoundMode, Gir, GirConfig, ParConfig, PointId, PointSet, QueryStats, RkrQuery,
    RkrResult, RtkQuery, RtkResult, WeightSet,
};

/// One randomized workload: generated sets plus the queries to pose.
struct Workload {
    p: PointSet,
    w: WeightSet,
    queries: Vec<Vec<f64>>,
    k: usize,
}

/// The `(d, |P|, |W|)` grid the harness sweeps. Sizes are chosen so the
/// weight shards are non-trivial for every worker count in
/// [`WORKER_COUNTS`] while the full sweep stays fast in CI.
const SHAPES: &[(usize, usize, usize)] = &[(2, 300, 48), (4, 400, 96), (6, 250, 130)];

/// Worker counts: degenerate (1), even splits (2, 4) and a count that
/// leaves a ragged final shard (7).
const WORKER_COUNTS: &[usize] = &[1, 2, 4, 7];

fn workloads(root_seed: u64) -> Vec<Workload> {
    let mut sm = SplitMix64::new(root_seed);
    let mut out = Vec::new();
    for &(dim, n_points, n_weights) in SHAPES {
        let spec = DataSpec {
            points: if dim >= 6 {
                PointDistribution::Clustered
            } else {
                PointDistribution::Uniform
            },
            weights: WeightDistribution::Uniform,
            dim,
            n_points,
            n_weights,
            seed: sm.next_u64(),
        };
        let (p, w) = spec.generate().expect("generation");
        // Two member queries plus one perturbed off-grid query per shape.
        let mut queries = Vec::new();
        for _ in 0..2 {
            let qid = (sm.next_u64() as usize) % p.len();
            queries.push(p.point(PointId(qid)).to_vec());
        }
        let qid = (sm.next_u64() as usize) % p.len();
        let mut q = p.point(PointId(qid)).to_vec();
        for x in &mut q {
            *x = (*x * 0.875).min(9.999);
        }
        queries.push(q);
        let k = 2 + (sm.next_u64() as usize) % 6;
        out.push(Workload { p, w, queries, k });
    }
    out
}

/// The grid configurations swept per workload: the defaults plus a
/// bit-packed fine grid (different cell classification, same answers).
fn grid_configs() -> Vec<GirConfig> {
    vec![
        GirConfig::default(),
        GirConfig {
            partitions: 128,
            packed: true,
            ..Default::default()
        },
    ]
}

/// The bound-sharing modes exercised for a workload with `nw` weights:
/// nondeterministic shared bounds, per-worker local bounds, and epoch
/// snapshots at the extremes (every weight, the default 64, one round).
fn modes(nw: usize) -> Vec<BoundMode> {
    vec![
        BoundMode::Shared,
        BoundMode::Local,
        BoundMode::Epoch(1),
        BoundMode::Epoch(64),
        BoundMode::Epoch(nw.max(1)),
    ]
}

fn stats_deterministic(mode: BoundMode) -> bool {
    mode != BoundMode::Shared
}

/// Sequential ground truth for one query.
fn expected(gir: &Gir, q: &[f64], k: usize) -> (RtkResult, QueryStats, RkrResult, QueryStats) {
    let mut rtk_stats = QueryStats::default();
    let rtk = gir.reverse_top_k(q, k, &mut rtk_stats);
    let mut rkr_stats = QueryStats::default();
    let rkr = gir.reverse_k_ranks(q, k, &mut rkr_stats);
    (rtk, rtk_stats, rkr, rkr_stats)
}

/// The tentpole assertion: every (grid × mode × workers × substrate)
/// combination returns the sequential answer bit-for-bit, and the
/// deterministic modes reproduce the *pooled* counters on the scoped
/// substrate exactly (and vice versa).
#[test]
fn pool_and_scope_match_sequential_across_the_configuration_grid() {
    for wl in workloads(0xD1FF_E4E2) {
        for cfg in grid_configs() {
            let gir = Gir::new(&wl.p, &wl.w, cfg);
            for q in &wl.queries {
                let (rtk_exp, _, rkr_exp, _) = expected(&gir, q, wl.k);
                for &workers in WORKER_COUNTS {
                    for mode in modes(wl.w.len()) {
                        let par_cfg = ParConfig {
                            threads: workers,
                            mode,
                        };
                        let scoped = gir.parallel(par_cfg);
                        let mut scoped_rtk_stats = QueryStats::default();
                        let got_rtk = scoped.reverse_top_k(q, wl.k, &mut scoped_rtk_stats);
                        assert_eq!(
                            got_rtk,
                            rtk_exp,
                            "scoped RTK diverged ({par_cfg:?}, {:?})",
                            gir.config()
                        );
                        let mut scoped_rkr_stats = QueryStats::default();
                        let got_rkr = scoped.reverse_k_ranks(q, wl.k, &mut scoped_rkr_stats);
                        assert_eq!(
                            got_rkr,
                            rkr_exp,
                            "scoped RKR diverged ({par_cfg:?}, {:?})",
                            gir.config()
                        );

                        pool_scope(workers, |pool| {
                            let pooled = gir.parallel(par_cfg).with_pool(pool);
                            let mut pool_rtk_stats = QueryStats::default();
                            assert_eq!(
                                pooled.reverse_top_k(q, wl.k, &mut pool_rtk_stats),
                                rtk_exp,
                                "pooled RTK diverged ({par_cfg:?})"
                            );
                            let mut pool_rkr_stats = QueryStats::default();
                            assert_eq!(
                                pooled.reverse_k_ranks(q, wl.k, &mut pool_rkr_stats),
                                rkr_exp,
                                "pooled RKR diverged ({par_cfg:?})"
                            );
                            if stats_deterministic(mode) {
                                assert_eq!(
                                    pool_rtk_stats, scoped_rtk_stats,
                                    "pooled RTK counters must equal scoped ({par_cfg:?})"
                                );
                                assert_eq!(
                                    pool_rkr_stats, scoped_rkr_stats,
                                    "pooled RKR counters must equal scoped ({par_cfg:?})"
                                );
                            }
                        });
                    }
                }
            }
        }
    }
}

/// Epoch-mode counters are reproducible run-to-run on both substrates:
/// two fresh executions of the same `(data, query, shards, epoch)` tuple
/// yield identical [`QueryStats`], making the mode gateable by
/// `rrq-benchdiff` at zero counter tolerance.
#[test]
fn epoch_mode_stats_are_a_pure_function_of_the_configuration() {
    for wl in workloads(0xE9_0C) {
        let gir = Gir::with_defaults(&wl.p, &wl.w);
        let q = &wl.queries[0];
        for &workers in &[2usize, 4, 7] {
            for &every in &[1usize, 64, wl.w.len()] {
                let par_cfg = ParConfig::epoch(workers, every);
                let runs: Vec<(RtkResult, QueryStats, RkrResult, QueryStats)> = (0..2)
                    .map(|_| {
                        pool_scope(workers, |pool| {
                            let eng = gir.parallel(par_cfg).with_pool(pool);
                            let mut rtk_stats = QueryStats::default();
                            let rtk = eng.reverse_top_k(q, wl.k, &mut rtk_stats);
                            let mut rkr_stats = QueryStats::default();
                            let rkr = eng.reverse_k_ranks(q, wl.k, &mut rkr_stats);
                            (rtk, rtk_stats, rkr, rkr_stats)
                        })
                    })
                    .collect();
                assert_eq!(
                    runs[0], runs[1],
                    "epoch mode must be bit-reproducible (workers={workers}, every={every})"
                );
                // And the scoped substrate agrees with the pool exactly.
                let scoped = gir.parallel(par_cfg);
                let mut rtk_stats = QueryStats::default();
                let rtk = scoped.reverse_top_k(q, wl.k, &mut rtk_stats);
                let mut rkr_stats = QueryStats::default();
                let rkr = scoped.reverse_k_ranks(q, wl.k, &mut rkr_stats);
                assert_eq!(
                    runs[0],
                    (rtk, rtk_stats, rkr, rkr_stats),
                    "scoped epoch run must match pooled (workers={workers}, every={every})"
                );
            }
        }
    }
}

/// Pool lifecycle: one pool serves many consecutive queries without
/// respawning workers; `par.pool_reuse` counts every query after the
/// first and the pool's own stats show the accumulated job fan-out.
#[test]
fn one_pool_serves_consecutive_queries_and_books_reuse() {
    let wl = &workloads(0x11FE)[1];
    let gir = Gir::with_defaults(&wl.p, &wl.w);
    pool_scope(4, |pool| {
        let eng = gir.parallel(ParConfig::deterministic(4)).with_pool(pool);
        let rec = SharedRecorder::new();
        let mut answers = Vec::new();
        for q in &wl.queries {
            let mut stats = QueryStats::default();
            answers.push(eng.reverse_k_ranks_traced(q, wl.k, &mut stats, &rec));
        }
        assert_eq!(answers.len(), 3);
        let booked = pool.stats();
        assert_eq!(booked.queries, 3, "each query is one pool run");
        assert_eq!(booked.jobs, 12, "4 shard jobs per query, no respawn");
        assert_eq!(
            rec.counter("par.pool_reuse"),
            Some(2),
            "every query after the first reuses live workers"
        );
        for (q, ans) in wl.queries.iter().zip(&answers) {
            let mut stats = QueryStats::default();
            assert_eq!(&gir.reverse_k_ranks(q, wl.k, &mut stats), ans);
        }
    });
}

/// A panicking job surfaces as an error on the submitting query but must
/// not poison the pool: the next query on the same workers succeeds.
#[test]
fn worker_panic_does_not_poison_later_queries() {
    pool_scope(2, |pool| {
        let boom: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("differential harness: deliberate job panic")),
        ];
        let err = pool
            .run(boom)
            .expect_err("panic must propagate as an error");
        assert!(
            err.to_string().contains("deliberate job panic"),
            "payload text surfaces in the error: {err}"
        );
        let ok = pool.run(
            (0..4usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect(),
        );
        assert_eq!(ok.expect("pool survives a panicked job"), vec![0, 1, 4, 9]);
    });
}

/// An undersized pool (0 or 1 workers) degrades to the sequential scan —
/// counted via `par.sequential_fallback`, never deadlocked, and still
/// correct.
#[test]
fn undersized_pools_fall_back_to_the_sequential_scan() {
    let wl = &workloads(0x5E0_FA11)[0];
    let gir = Gir::with_defaults(&wl.p, &wl.w);
    let q = &wl.queries[0];
    let mut expect_stats = QueryStats::default();
    let expect = gir.reverse_top_k(q, wl.k, &mut expect_stats);
    for workers in [0usize, 1] {
        pool_scope(workers, |pool| {
            let eng = gir.parallel(ParConfig::epoch(4, 16)).with_pool(pool);
            let rec = SharedRecorder::new();
            let mut stats = QueryStats::default();
            assert_eq!(eng.reverse_top_k_traced(q, wl.k, &mut stats, &rec), expect);
            assert_eq!(stats, expect_stats, "fallback is the sequential engine");
            assert_eq!(rec.counter("par.sequential_fallback"), Some(1));
            assert_eq!(pool.stats().queries, 0, "no work reaches the pool");
        });
    }
}

/// `pool_scope` returning at all proves drop-joins: workers park on the
/// job channel, so the scope can only exit once the pool handle's drop
/// disconnects them and `thread::scope` joins every worker.
#[test]
fn pool_scope_joins_workers_on_exit() {
    let witnessed = pool_scope(3, |pool| {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| Box::new(move || i + 100) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        pool.run(jobs).expect("jobs complete")
    });
    assert_eq!(witnessed, vec![100, 101, 102, 103, 104, 105]);
}
