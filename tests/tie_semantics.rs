//! Tie-semantics consistency suite: every algorithm must apply the same
//! strict-`<` rank semantics when `f_w(q) = f_w(p)` EXACTLY.
//!
//! The paper defines `rank(w, q) = |{p ∈ P : f_w(p) < f_w(q)}|`, so a
//! product that *ties* the query must NOT count against it. Ties are
//! easy to get wrong in two independent places: the exact refinement
//! comparison (`<` vs `<=`) and the grid classifier's integer threshold
//! (a cell whose upper corner score equals `f_w(q)` exactly must stay
//! `Incomparable`, not `Precedes` — the bug fixed in
//! `Grid::prepare_scan`).
//!
//! All scores here are constructed from dyadic rationals (0.25, 0.5,
//! 2.0, 4.0, ...) so inner products are bit-exact in f64 and the ties
//! are real ties, not almost-ties.

use reverse_rank::data::DataSpec;
use reverse_rank::{
    Bbr, BbrConfig, Gir, GirConfig, Mpa, MpaConfig, Naive, ParConfig, PointId, PointSet,
    QueryStats, RkrQuery, Rta, RtkQuery, Sim, SparseGir, WeightSet,
};

/// A 2-d workload saturated with exact ties against the query
/// `q = (4, 4)`:
///
/// * duplicates of `q` itself (tie under every weight),
/// * swap pairs `(2,6)/(6,2)`, `(3,5)/(5,3)` (tie under `w = (½,½)`),
/// * `(1,5)` and `(7,3)` (tie under `w = (¼,¾)`),
/// * strictly better / worse points so ranks are non-trivial,
/// * duplicated weight rows (equal preferences must answer equally).
fn tie_workload_2d() -> (PointSet, WeightSet, Vec<f64>) {
    let p = PointSet::from_flat(
        2,
        10.0,
        &[
            4.0, 4.0, // p0 = q
            4.0, 4.0, // p1 = q (duplicate)
            2.0, 6.0, // p2: ties q under (½,½)
            6.0, 2.0, // p3: ties q under (½,½)
            3.0, 5.0, // p4: ties q under (½,½)
            5.0, 3.0, // p5: ties q under (½,½)
            1.0, 5.0, // p6: ties q under (¼,¾)
            7.0, 3.0, // p7: ties q under (¼,¾)
            0.5, 0.5, // p8: strictly precedes q everywhere
            9.0, 9.0, // p9: strictly succeeds q everywhere
            4.0, 4.0, // p10 = q (another duplicate)
            2.0, 2.0, // p11: strictly precedes q everywhere
        ],
    )
    .unwrap();
    let w = WeightSet::from_flat(
        2,
        &[
            0.5, 0.5, //
            0.25, 0.75, //
            0.75, 0.25, //
            0.5, 0.5, // duplicate of w0
            0.25, 0.75, // duplicate of w1
            1.0, 0.0, // axis weight: many ties at 4.0 in dim 0
        ],
    )
    .unwrap();
    (p, w, vec![4.0, 4.0])
}

/// A 3-d variant: `q = (4, 4, 4)`, ties engineered under
/// `w = (½, ¼, ¼)` — `(4,2,6)`, `(2,6,6)`, `(6,2,2)`, `(8,0,0)` all
/// score exactly 4.0.
fn tie_workload_3d() -> (PointSet, WeightSet, Vec<f64>) {
    let p = PointSet::from_flat(
        3,
        10.0,
        &[
            4.0, 4.0, 4.0, // q itself
            4.0, 2.0, 6.0, // tie under (½,¼,¼)
            2.0, 6.0, 6.0, // tie under (½,¼,¼)
            6.0, 2.0, 2.0, // tie under (½,¼,¼)
            8.0, 0.0, 0.0, // tie under (½,¼,¼)
            1.0, 1.0, 1.0, // strictly precedes
            8.0, 8.0, 8.0, // strictly succeeds
            4.0, 4.0, 4.0, // duplicate of q
            0.0, 8.0, 8.0, // tie under (½,¼,¼)
        ],
    )
    .unwrap();
    let w = WeightSet::from_flat(
        3,
        &[
            0.5, 0.25, 0.25, //
            0.25, 0.5, 0.25, //
            0.25, 0.25, 0.5, //
            0.5, 0.25, 0.25, // duplicate of w0
        ],
    )
    .unwrap();
    (p, w, vec![4.0, 4.0, 4.0])
}

/// The degenerate single-dimension workload: with `d = 1` the only valid
/// weight row is `[1.0]`, so every weight duplicates every other and a
/// point's score is its lone coordinate. Grid cells, dominance and
/// refinement all collapse — and must still agree on strict-`<` ranks
/// against `q = 4.0` with duplicates of `q` in the point set.
fn tie_workload_1d() -> (PointSet, WeightSet, Vec<f64>) {
    let p = PointSet::from_flat(
        1,
        10.0,
        &[
            4.0, // p0 = q
            4.0, // p1 = q (duplicate)
            2.0, // p2: strictly precedes
            2.0, // p3: duplicate of p2
            6.0, // p4: strictly succeeds
            4.0, // p5 = q (another duplicate)
            0.0, // p6: domain minimum
            9.5, // p7: near the (exclusive) domain maximum
        ],
    )
    .unwrap();
    let w = WeightSet::from_flat(1, &[1.0, 1.0, 1.0]).unwrap();
    (p, w, vec![4.0])
}

fn gir_configs() -> Vec<GirConfig> {
    let mut cfgs = Vec::new();
    for partitions in [4usize, 32, 128] {
        for packed in [false, true] {
            for use_domin in [false, true] {
                cfgs.push(GirConfig {
                    partitions,
                    packed,
                    use_domin,
                });
            }
        }
    }
    cfgs
}

fn check_workload(p: &PointSet, w: &WeightSet, q: &[f64]) {
    let naive = Naive::new(p, w);
    let sim = Sim::new(p, w);
    let bbr = Bbr::new(p, w, BbrConfig::default());
    let mpa = Mpa::new(p, w, MpaConfig::default());
    let rta = Rta::new(p, w);
    let sparse = SparseGir::new(p, w, 16);
    let girs: Vec<Gir> = gir_configs()
        .into_iter()
        .map(|c| Gir::new(p, w, c))
        .collect();

    let ks = [1usize, 2, 3, w.len(), w.len() + 3];
    for &k in &ks {
        let mut s = QueryStats::default();
        let rtk_expected = naive.reverse_top_k(q, k, &mut s);
        let rkr_expected = naive.reverse_k_ranks(q, k, &mut s);

        let rtk_algs: Vec<&dyn RtkQuery> = vec![&sim, &bbr, &mpa, &rta, &sparse];
        for alg in rtk_algs {
            let mut s = QueryStats::default();
            assert_eq!(
                alg.reverse_top_k(q, k, &mut s),
                rtk_expected,
                "{} RTK differs from NAIVE on exact ties (k={k})",
                alg.name()
            );
        }
        let rkr_algs: Vec<&dyn RkrQuery> = vec![&sim, &mpa, &sparse];
        for alg in rkr_algs {
            let mut s = QueryStats::default();
            assert_eq!(
                alg.reverse_k_ranks(q, k, &mut s),
                rkr_expected,
                "{} RKR differs from NAIVE on exact ties (k={k})",
                alg.name()
            );
        }

        for gir in &girs {
            let mut s = QueryStats::default();
            assert_eq!(
                gir.reverse_top_k(q, k, &mut s),
                rtk_expected,
                "GIR {:?} RTK differs from NAIVE on exact ties (k={k})",
                gir.config()
            );
            let mut s = QueryStats::default();
            assert_eq!(
                gir.reverse_k_ranks(q, k, &mut s),
                rkr_expected,
                "GIR {:?} RKR differs from NAIVE on exact ties (k={k})",
                gir.config()
            );
            // The parallel engine inherits whatever tie semantics the
            // sequential scan has — both modes must match too.
            for par in [ParConfig::deterministic(3), ParConfig::with_threads(2)] {
                let eng = gir.parallel(par);
                let mut s = QueryStats::default();
                assert_eq!(eng.reverse_top_k(q, k, &mut s), rtk_expected);
                let mut s = QueryStats::default();
                assert_eq!(eng.reverse_k_ranks(q, k, &mut s), rkr_expected);
            }
        }
    }
}

#[test]
fn exact_ties_2d_all_algorithms_agree() {
    let (p, w, q) = tie_workload_2d();
    check_workload(&p, &w, &q);

    // Ground-truth spot checks so the suite fails loudly if NAIVE itself
    // ever regresses. Hand-computed strict-< ranks (tied scores at
    // exactly 4.0 MUST NOT count): w0=(½,½) sees p6, p8, p11 below q;
    // w1=(¼,¾) sees p3, p5, p8, p11; w2=(¾,¼) sees p2, p4, p6, p8, p11;
    // the axis weight w5=(1,0) sees p2, p4, p6, p8, p11.
    let naive = Naive::new(&p, &w);
    let mut s = QueryStats::default();
    let rkr = naive.reverse_k_ranks(&q, w.len(), &mut s);
    let rank_of = |wid: usize| {
        rkr.entries()
            .iter()
            .find(|e| e.weight.0 == wid)
            .map(|e| e.rank)
            .unwrap()
    };
    assert_eq!(
        [0, 1, 2, 3, 4, 5].map(rank_of),
        [3, 4, 5, 3, 4, 5],
        "strict-< ranks regressed (ties counted against q?)"
    );
}

#[test]
fn exact_ties_3d_all_algorithms_agree() {
    let (p, w, q) = tie_workload_3d();
    check_workload(&p, &w, &q);
}

#[test]
fn exact_ties_1d_all_algorithms_agree() {
    let (p, w, q) = tie_workload_1d();
    check_workload(&p, &w, &q);

    // Every weight sees exactly p2, p3, p6 strictly below q = 4.0; the
    // three duplicates of q tie and must not count.
    let naive = Naive::new(&p, &w);
    let mut s = QueryStats::default();
    let rkr = naive.reverse_k_ranks(&q, w.len(), &mut s);
    assert!(
        rkr.entries().iter().all(|e| e.rank == 3),
        "1-d strict-< ranks regressed: {:?}",
        rkr.entries()
    );
}

/// Exact duplicate points (`p_i == p_j` bit-for-bit) must be counted
/// individually: rank is a multiset cardinality, so a pair of equal
/// points below `q` contributes 2, not 1 — and duplicates *of* `q`
/// still contribute 0.
#[test]
fn exact_duplicate_points_count_individually() {
    let p = PointSet::from_flat(
        2,
        10.0,
        &[
            1.0, 1.0, // p0: below q under every weight
            1.0, 1.0, // p1 = p0
            4.0, 4.0, // p2 = q
            4.0, 4.0, // p3 = q
            7.0, 7.0, // p4: above q everywhere
            7.0, 7.0, // p5 = p4
        ],
    )
    .unwrap();
    let w = WeightSet::from_flat(2, &[0.5, 0.5, 0.25, 0.75, 0.5, 0.5]).unwrap();
    let q = vec![4.0, 4.0];
    check_workload(&p, &w, &q);

    let naive = Naive::new(&p, &w);
    let mut s = QueryStats::default();
    let rkr = naive.reverse_k_ranks(&q, w.len(), &mut s);
    assert!(
        rkr.entries().iter().all(|e| e.rank == 2),
        "each member of a duplicate pair below q must count once: {:?}",
        rkr.entries()
    );
}

/// Duplicating an entire generated workload (every point and weight
/// twice) keeps all algorithms in agreement — every score collides with
/// its twin, so tie handling is exercised on realistic data too.
#[test]
fn duplicated_generated_workload_agrees() {
    let spec = DataSpec::uniform_default(4, 120, 0xD0_17);
    let (p0, w0) = spec.generate().unwrap();
    let mut p = PointSet::new(p0.dim(), p0.value_range()).unwrap();
    for i in 0..p0.len() {
        let row = p0.point(PointId(i)).to_vec();
        p.push_slice(&row).unwrap();
        p.push_slice(&row).unwrap();
    }
    let mut flat = Vec::new();
    for i in 0..w0.len() {
        let row = w0.weight(reverse_rank::WeightId(i)).to_vec();
        flat.extend_from_slice(&row);
        flat.extend_from_slice(&row);
    }
    let w = WeightSet::from_flat(w0.dim(), &flat).unwrap();
    for qid in [0usize, 77, 239] {
        let q = p.point(PointId(qid)).to_vec();
        check_workload(&p, &w, &q);
    }
}
