//! Integration tests pinning the paper's qualitative claims — the
//! "shape" assertions of the reproduction. Each test corresponds to a
//! statement in the paper and fails if the reproduction stops exhibiting
//! it.

use reverse_rank::data::{synthetic, DataSpec};
use reverse_rank::prelude::*;
use reverse_rank::rtree::{stats as rstats, RTree, RTreeConfig};
use reverse_rank::{Bbr, BbrConfig, Mpa, MpaConfig};
use rrq_bench::runner::{time_rkr, time_rtk};

/// §5.2 / Table 3: in high dimensions a tiny range query overlaps
/// essentially every MBR, while low dimensions prune fine.
#[test]
fn rtree_overlap_saturates_with_dimensionality() {
    let probe = |d: usize| {
        let ps = synthetic::uniform_points(d, 4000, 10_000.0, 5).unwrap();
        let tree = RTree::bulk_load(&ps, RTreeConfig::with_max_entries(32));
        let q = rstats::fractional_volume_query(d, 10_000.0, 0.01, &vec![0.5; d]);
        rstats::overlap_fraction(&tree, &q)
    };
    assert!(probe(3) < 0.7, "3-d overlap should be partial");
    assert!(probe(12) > 0.95, "12-d overlap should saturate");
}

/// §1.2 / Fig. 2: in high dimensions the tree-based algorithms lose
/// their pruning power — BBR spends more pairwise computations than the
/// plain scan, and MPA's R-tree rank counts touch nearly every leaf
/// entry. (Wall-clock versions of these claims hold in release builds —
/// see the fig2/fig10/fig11 experiments; tests run unoptimised, so we
/// assert the machine-independent counters here.)
#[test]
fn sim_beats_trees_in_high_dimensions() {
    let spec = DataSpec {
        n_weights: 400,
        ..DataSpec::uniform_default(16, 4000, 9)
    };
    let (p, w) = spec.generate().unwrap();
    let queries: Vec<Vec<f64>> = (0..3)
        .map(|i| p.point(PointId(i * 1000)).to_vec())
        .collect();
    let sim = Sim::new(&p, &w);
    let bbr = Bbr::new(&p, &w, BbrConfig::default());
    let mpa = Mpa::new(&p, &w, MpaConfig::default());
    let sim_rtk = time_rtk(&sim, &queries, 50);
    let bbr_rtk = time_rtk(&bbr, &queries, 50);
    assert!(
        sim_rtk.stats.multiplications < bbr_rtk.stats.multiplications,
        "SIM ({}) should multiply less than BBR ({}) at d = 16",
        sim_rtk.stats.multiplications,
        bbr_rtk.stats.multiplications
    );
    // MPA's per-weight tree scans access the vast majority of leaf
    // entries at d = 16 (the degeneration of §5.2): pruning saves little.
    let mpa_rkr = time_rkr(&mpa, &queries, 50);
    let accesses_per_pair = mpa_rkr.stats.leaf_accesses as f64
        / (p.len() as f64 * mpa_rkr.stats.weights_visited as f64);
    assert!(
        accesses_per_pair > 0.2,
        "expected degenerate leaf access rate, got {accesses_per_pair:.3}"
    );
}

/// Fig. 11b/11d: the tree-based algorithms spend *more* pairwise
/// multiplications than the scan in high dimensions, and GIR spends far
/// fewer than either.
#[test]
fn multiplication_counts_order_as_in_fig11() {
    let spec = DataSpec {
        n_weights: 300,
        ..DataSpec::uniform_default(20, 3000, 11)
    };
    let (p, w) = spec.generate().unwrap();
    let queries: Vec<Vec<f64>> = vec![p.point(PointId(42)).to_vec()];
    let gir = Gir::with_defaults(&p, &w);
    let sim = Sim::new(&p, &w);
    let bbr = Bbr::new(&p, &w, BbrConfig::default());
    let gir_run = time_rtk(&gir, &queries, 100);
    let sim_run = time_rtk(&sim, &queries, 100);
    let bbr_run = time_rtk(&bbr, &queries, 100);
    assert!(
        gir_run.stats.multiplications < sim_run.stats.multiplications,
        "GIR must multiply less than SIM"
    );
    assert!(
        sim_run.stats.multiplications < bbr_run.stats.multiplications,
        "the scan must multiply less than BBR at d = 20"
    );
}

/// §5.3 Theorem 1 example: d = 20 requires n ≈ 25, rounded to 32.
#[test]
fn theorem1_paper_example() {
    let n = reverse_rank::core::model::required_partitions(20, 0.01);
    assert!(
        (20..=32).contains(&n),
        "analytic n for d=20, eps=1% should be in the paper's ballpark, got {n}"
    );
    assert_eq!(reverse_rank::core::model::next_power_of_two(n), 32);
}

/// Abstract: "requires only a little memory cost" — index structures are
/// a small fraction of the data.
#[test]
fn index_memory_is_a_fraction_of_data() {
    let spec = DataSpec::uniform_default(6, 20_000, 13);
    let (p, w) = spec.generate().unwrap();
    let gir = Gir::new(
        &p,
        &w,
        GirConfig {
            packed: true,
            ..Default::default()
        },
    );
    let data_bytes = (p.as_flat().len() + w.as_flat().len()) * 8;
    assert!(
        gir.index_memory_bytes() * 5 < data_bytes,
        "index {} vs data {data_bytes}",
        gir.index_memory_bytes()
    );
}

/// §1 / Fig. 1: RTK can be empty for unpopular products; RKR never is.
#[test]
fn rkr_never_empty_rtk_can_be() {
    let spec = DataSpec::uniform_default(4, 2000, 17);
    let (p, w) = spec.generate().unwrap();
    let gir = Gir::with_defaults(&p, &w);
    // A terrible product: dominated by nearly everything.
    let q = vec![9_990.0; 4];
    let mut stats = QueryStats::default();
    assert!(gir.reverse_top_k(&q, 10, &mut stats).is_empty());
    let rkr = gir.reverse_k_ranks(&q, 10, &mut stats);
    assert_eq!(rkr.len(), 10, "RKR always returns k preferences");
}
