//! The experiment harness runs end-to-end from the outside: every
//! registered experiment produces renderable, plausible tables at smoke
//! scale (the `all_experiments_run_at_smoke_scale` unit test covers
//! execution; these tests assert on *content*).

use rrq_bench::experiments;
use rrq_bench::ExpConfig;

fn run(id: &str, cfg: &ExpConfig) -> Vec<rrq_bench::Table> {
    (experiments::find(id).expect("registered").run)(cfg)
}

#[test]
fn table3_shows_overlap_saturation() {
    let cfg = ExpConfig {
        p_card: 3000,
        ..ExpConfig::smoke()
    };
    let tables = run("table3", &cfg);
    let t = &tables[0];
    // Column 4 is "overlap(1%)". First row d = 3, last row d = 24.
    let first: f64 = t.rows.first().unwrap()[4]
        .trim_end_matches('%')
        .parse()
        .unwrap();
    let last: f64 = t.rows.last().unwrap()[4]
        .trim_end_matches('%')
        .parse()
        .unwrap();
    assert!(last > 99.0, "d = 24 overlap should be ~100%, got {last}");
    assert!(first < last + 1e-9, "overlap should not shrink with d");
}

#[test]
fn table4_reports_high_filter_rates() {
    let cfg = ExpConfig {
        p_card: 2000,
        w_card: 500,
        queries: 2,
        k: 10,
        ..ExpConfig::smoke()
    };
    let tables = run("table4", &cfg);
    let effective = &tables[0];
    for row in &effective.rows {
        for cell in &row[1..] {
            let pct: f64 = cell.trim_end_matches('%').parse().unwrap();
            assert!(
                pct > 55.0,
                "effective filter rate {pct}% too low in {row:?}"
            ); // smoke scale; paper scale is far higher
        }
    }
}

#[test]
fn fig15b_filtering_grows_with_n() {
    let cfg = ExpConfig {
        p_card: 2000,
        w_card: 300,
        queries: 2,
        k: 10,
        ..ExpConfig::smoke()
    };
    let tables = run("fig15", &cfg);
    let panel_b = &tables[1];
    let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
    let first = parse(&panel_b.rows.first().unwrap()[1]);
    let last = parse(&panel_b.rows.last().unwrap()[1]);
    assert!(
        last >= first,
        "filtering should not degrade with finer grids: n=4 {first}% vs n=128 {last}%"
    );
}

#[test]
fn fig8_histogram_is_normalised_and_unimodalish() {
    let cfg = ExpConfig::smoke();
    let tables = run("fig8", &cfg);
    let t = &tables[0];
    let freqs: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
    let total: f64 = freqs.iter().sum();
    assert!((total - 1.0).abs() < 1e-2, "frequencies sum to {total}"); // cells printed at 4 decimals
                                                                       // The mode should not be at either extreme bucket.
    let peak = freqs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(peak > 0 && peak < freqs.len() - 1, "peak at {peak}");
}

#[test]
fn theorem1_measured_tracks_model() {
    let cfg = ExpConfig {
        p_card: 2000,
        w_card: 500,
        queries: 2,
        k: 20,
        ..ExpConfig::smoke()
    };
    let tables = run("theorem1", &cfg);
    for row in &tables[0].rows {
        let measured: f64 = row[4].trim_end_matches('%').parse().unwrap();
        assert!(
            measured > 45.0,
            "measured effective filtering {measured}% at d={} unexpectedly low",
            row[0]
        ); // smoke scale with tiny |W|; the bound sharpens with scale
    }
}

#[test]
fn table2_pairwise_dominates_read() {
    let cfg = ExpConfig {
        p_card: 3000,
        ..ExpConfig::smoke()
    };
    let tables = run("table2", &cfg);
    let last = tables[0].rows.last().unwrap();
    let read: f64 = last[1].parse().unwrap();
    let pairwise: f64 = last[3].parse().unwrap();
    assert!(
        pairwise > read,
        "pairwise computation ({pairwise}ms) should outweigh file reads ({read}ms)"
    );
}
