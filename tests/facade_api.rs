//! Integration tests of the public facade: everything a downstream user
//! would touch must be reachable and coherent through `reverse_rank`.

use reverse_rank::prelude::*;
use reverse_rank::{
    AdaptiveGrid, Bbr, BbrConfig, Grid, KBestHeap, Mpa, MpaConfig, RkrEntry, RkrResult, RrqError,
    RtkResult, SparseGir, Weight,
};

#[test]
fn end_to_end_through_the_facade() {
    // Build data through the facade types only.
    let mut products = PointSet::with_capacity(3, 100.0, 50).unwrap();
    for i in 0..50 {
        let v = i as f64;
        products
            .push_slice(&[
                v.rem_euclid(97.0),
                (v * 7.0).rem_euclid(89.0),
                (v * 13.0).rem_euclid(83.0),
            ])
            .unwrap();
    }
    let mut users = WeightSet::new(3).unwrap();
    for i in 1..=20 {
        let w = Weight::normalized(vec![i as f64, 21.0 - i as f64, 10.0]).unwrap();
        users.push(&w).unwrap();
    }

    let gir = Gir::with_defaults(&products, &users);
    let naive = Naive::new(&products, &users);
    let q = products.point(PointId(25)).to_vec();
    let mut stats = QueryStats::default();

    let rtk = gir.reverse_top_k(&q, 5, &mut stats);
    assert_eq!(rtk, naive.reverse_top_k(&q, 5, &mut stats));

    let rkr = gir.reverse_k_ranks(&q, 5, &mut stats);
    assert_eq!(rkr, naive.reverse_k_ranks(&q, 5, &mut stats));
    assert_eq!(rkr.len(), 5);

    // Instrumentation flowed through.
    assert!(stats.multiplications > 0);
}

#[test]
fn every_algorithm_type_is_constructible_via_facade() {
    let p = PointSet::from_flat(2, 10.0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
    let w = WeightSet::from_flat(2, &[0.5, 0.5, 0.2, 0.8]).unwrap();
    let q = vec![3.0, 4.0];
    let mut stats = QueryStats::default();

    let results: Vec<RtkResult> = vec![
        Naive::new(&p, &w).reverse_top_k(&q, 2, &mut stats),
        Sim::new(&p, &w).reverse_top_k(&q, 2, &mut stats),
        Bbr::new(&p, &w, BbrConfig::default()).reverse_top_k(&q, 2, &mut stats),
        Mpa::new(&p, &w, MpaConfig::default()).reverse_top_k(&q, 2, &mut stats),
        Gir::with_defaults(&p, &w).reverse_top_k(&q, 2, &mut stats),
        SparseGir::new(&p, &w, 16).reverse_top_k(&q, 2, &mut stats),
        Gir::with_grid(
            &p,
            &w,
            AdaptiveGrid::from_data(4, &p, &w),
            GirConfig::default(),
        )
        .reverse_top_k(&q, 2, &mut stats),
    ];
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn facade_error_type_round_trips() {
    let err = PointSet::new(0, 1.0).unwrap_err();
    assert!(matches!(err, RrqError::InvalidParameter { .. }));
    let err: Box<dyn std::error::Error> = Box::new(err);
    assert!(!err.to_string().is_empty());
}

#[test]
fn facade_helper_types_work() {
    // Grid is usable standalone for bound mathematics.
    let grid = Grid::new(8, 100.0);
    assert_eq!(grid.partitions(), 8);
    let pa = [grid.point_cell(12.0), grid.point_cell(99.0)];
    let wa = [grid.weight_cell(0.4), grid.weight_cell(0.6)];
    assert!(grid.score_lower(&pa, &wa) <= grid.score_upper(&pa, &wa));

    // KBestHeap is reusable for custom rank-aware pipelines.
    let mut heap = KBestHeap::new(2);
    heap.offer(3, WeightId(0));
    heap.offer(1, WeightId(1));
    heap.offer(2, WeightId(2));
    let result: RkrResult = heap.into_result();
    let entries: Vec<RkrEntry> = result.entries().to_vec();
    assert_eq!(entries[0].rank, 1);
    assert_eq!(entries[1].rank, 2);
}

#[test]
fn submodules_are_reachable() {
    // Spot-check that the re-exported crates expose their full APIs.
    let ps = reverse_rank::data::synthetic::uniform_points(3, 10, 10.0, 1).unwrap();
    let tree =
        reverse_rank::rtree::RTree::bulk_load(&ps, reverse_rank::rtree::RTreeConfig::default());
    assert_eq!(tree.len(), 10);
    let n = reverse_rank::core::model::required_partitions(20, 0.01);
    assert!(n > 2);
    assert!(reverse_rank::types::rank_of(&ps, &[0.4, 0.3, 0.3], ps.point(PointId(0))) < 10);
}
