//! Cross-crate integration: every algorithm in the workspace answers
//! every query identically on a matrix of workloads.

use reverse_rank::data::{DataSpec, PointDistribution, WeightDistribution};
use reverse_rank::{
    Bbr, BbrConfig, Gir, GirConfig, Mpa, MpaConfig, Naive, PointId, QueryStats, RkrQuery, Rta,
    RtkQuery, Sim, SparseGir,
};

fn workloads() -> Vec<DataSpec> {
    let mut specs = Vec::new();
    for (pd, wd) in [
        (PointDistribution::Uniform, WeightDistribution::Uniform),
        (PointDistribution::Clustered, WeightDistribution::Clustered),
        (
            PointDistribution::AntiCorrelated,
            WeightDistribution::Uniform,
        ),
        (PointDistribution::Exponential, WeightDistribution::Normal),
        (PointDistribution::Normal, WeightDistribution::Exponential),
        (
            PointDistribution::Uniform,
            WeightDistribution::Sparse { max_nonzero: 2 },
        ),
        (PointDistribution::Dianping, WeightDistribution::Dianping),
        (PointDistribution::House, WeightDistribution::Uniform),
        (PointDistribution::Color, WeightDistribution::Uniform),
    ] {
        for d in [2usize, 5, 9] {
            specs.push(DataSpec {
                points: pd,
                weights: wd,
                dim: d,
                n_points: 220,
                n_weights: 70,
                seed: 0xACE0 + d as u64,
            });
        }
    }
    specs
}

#[test]
fn all_rtk_algorithms_agree() {
    for spec in workloads() {
        let (p, w) = spec.generate().unwrap();
        let naive = Naive::new(&p, &w);
        let sim = Sim::new(&p, &w);
        let bbr = Bbr::new(&p, &w, BbrConfig::default());
        let mpa = Mpa::new(&p, &w, MpaConfig::default());
        let gir = Gir::with_defaults(&p, &w);
        let gir32 = Gir::new(
            &p,
            &w,
            GirConfig {
                partitions: 8,
                packed: true,
                ..Default::default()
            },
        );
        let sparse = SparseGir::new(&p, &w, 32);
        let rta = Rta::new(&p, &w);
        let algorithms: Vec<&dyn RtkQuery> = vec![&sim, &bbr, &mpa, &gir, &gir32, &sparse, &rta];
        for qid in [0usize, 111, 219] {
            let q = p.point(PointId(qid)).to_vec();
            for k in [1usize, 12, 60] {
                let mut stats = QueryStats::default();
                let expected = naive.reverse_top_k(&q, k, &mut stats);
                for alg in &algorithms {
                    let mut s = QueryStats::default();
                    assert_eq!(
                        alg.reverse_top_k(&q, k, &mut s),
                        expected,
                        "{} differs from NAIVE on {} q={qid} k={k}",
                        alg.name(),
                        spec.label()
                    );
                }
            }
        }
    }
}

#[test]
fn all_rkr_algorithms_agree() {
    for spec in workloads() {
        let (p, w) = spec.generate().unwrap();
        let naive = Naive::new(&p, &w);
        let sim = Sim::new(&p, &w);
        let mpa = Mpa::new(&p, &w, MpaConfig::default());
        let gir = Gir::with_defaults(&p, &w);
        let sparse = SparseGir::new(&p, &w, 16);
        let algorithms: Vec<&dyn RkrQuery> = vec![&sim, &mpa, &gir, &sparse];
        for qid in [0usize, 111, 219] {
            let q = p.point(PointId(qid)).to_vec();
            for k in [1usize, 12, 200] {
                let mut stats = QueryStats::default();
                let expected = naive.reverse_k_ranks(&q, k, &mut stats);
                for alg in &algorithms {
                    let mut s = QueryStats::default();
                    assert_eq!(
                        alg.reverse_k_ranks(&q, k, &mut s),
                        expected,
                        "{} differs from NAIVE on {} q={qid} k={k}",
                        alg.name(),
                        spec.label()
                    );
                }
            }
        }
    }
}

/// A query point completely outside `P` (never generated from it) gets
/// consistent answers too.
#[test]
fn external_query_points_agree() {
    let spec = DataSpec::uniform_default(4, 300, 99);
    let (p, w) = spec.generate().unwrap();
    let naive = Naive::new(&p, &w);
    let gir = Gir::with_defaults(&p, &w);
    let bbr = Bbr::new(&p, &w, BbrConfig::default());
    for q in [
        vec![0.0, 0.0, 0.0, 0.0],
        vec![9_999.0; 4],
        vec![1.0, 9_000.0, 42.0, 4_999.5],
    ] {
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let mut s3 = QueryStats::default();
        let expected = naive.reverse_top_k(&q, 20, &mut s1);
        assert_eq!(gir.reverse_top_k(&q, 20, &mut s2), expected);
        assert_eq!(bbr.reverse_top_k(&q, 20, &mut s3), expected);
    }
}

/// Degenerate workloads: single point, single weight, duplicates.
#[test]
fn degenerate_workloads_agree() {
    use reverse_rank::{PointSet, WeightSet};
    // Single point, single weight.
    let p1 = PointSet::from_flat(2, 10.0, &[3.0, 4.0]).unwrap();
    let w1 = WeightSet::from_flat(2, &[0.5, 0.5]).unwrap();
    let naive = Naive::new(&p1, &w1);
    let gir = Gir::with_defaults(&p1, &w1);
    let q = vec![3.0, 4.0];
    let mut s = QueryStats::default();
    assert_eq!(
        gir.reverse_top_k(&q, 1, &mut s),
        naive.reverse_top_k(&q, 1, &mut s)
    );
    assert_eq!(
        gir.reverse_k_ranks(&q, 1, &mut s),
        naive.reverse_k_ranks(&q, 1, &mut s)
    );

    // All points identical: every rank is 0 (nothing strictly precedes).
    let mut pd = PointSet::new(2, 10.0).unwrap();
    for _ in 0..40 {
        pd.push_slice(&[5.0, 5.0]).unwrap();
    }
    let wd = WeightSet::from_flat(2, &[0.3, 0.7, 0.6, 0.4]).unwrap();
    let naive = Naive::new(&pd, &wd);
    let gir = Gir::with_defaults(&pd, &wd);
    let sim = Sim::new(&pd, &wd);
    let q = vec![5.0, 5.0];
    let mut s = QueryStats::default();
    let expected = naive.reverse_k_ranks(&q, 2, &mut s);
    assert_eq!(expected.ranks(), vec![0, 0]);
    assert_eq!(gir.reverse_k_ranks(&q, 2, &mut s), expected);
    assert_eq!(sim.reverse_k_ranks(&q, 2, &mut s), expected);
}
