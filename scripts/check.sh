#!/usr/bin/env bash
# Pre-PR gate: formatting, lints (clippy + rrq-lint), build and the
# full test suite.
#
# rrq-lint is the workspace's own static-analysis pass: it enforces the
# determinism, unsafe-containment and counter-integrity rules clippy
# cannot express (see DESIGN.md §10). scripts/lint_gate.sh runs it
# standalone with JSON output for CI.
#
# Everything here runs fully offline — the workspace has no external
# dependencies by design (see the workspace Cargo.toml), so no step
# touches the network. Run from anywhere inside the repository.
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/" 2>/dev/null \
  || cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rrq-lint (workspace invariants)"
cargo build --release -q -p rrq-lint
./target/release/rrq-lint

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> rrq-benchdiff smoke (tiny dataset, self vs self must be clean)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke >/dev/null)
./target/release/rrq-benchdiff \
  "$smoke_dir/BENCH_fig14.json" "$smoke_dir/BENCH_fig14.json" >/dev/null
echo "    self-diff clean"

echo "==> parallel query engine smoke (--par-query 4)"
# (a) Determinism: two independent same-seed parallel runs must produce
#     bit-identical counters — rrq-benchdiff's default exact counter
#     threshold is the gate. Latency/heap jitter is machine noise, not
#     part of the determinism contract.
par_a="$smoke_dir/par_a"; par_b="$smoke_dir/par_b"
mkdir -p "$par_a" "$par_b"
(cd "$par_a" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke --par-query 4 >/dev/null)
(cd "$par_b" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke --par-query 4 >/dev/null)
./target/release/rrq-benchdiff \
  "$par_a/BENCH_fig14.json" "$par_b/BENCH_fig14.json" \
  --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    deterministic parallel self-diff clean (exact counters)"
# (b) Structure: the parallel document must pair up with the sequential
#     one run for run (same experiments, algorithms, labels). Counters
#     legitimately differ (per-worker Domin buffers), so only the
#     document structure and config are gated here.
./target/release/rrq-benchdiff \
  "$smoke_dir/BENCH_fig14.json" "$par_a/BENCH_fig14.json" \
  --max-counter-pct inf --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    sequential vs parallel document structure clean"

echo "==> worker pool + epoch snapshot smoke (--par-pool --par-epoch 64)"
# Epoch-snapshot mode folds shared bounds at fixed weight offsets, so its
# pruning counters are a pure function of (data, query, shards, epoch):
# two same-seed runs on the persistent pool must diff clean at the
# default EXACT counter threshold — the determinism contract of
# DESIGN.md §5b, gated end to end through the bench exporter.
pool_a="$smoke_dir/pool_a"; pool_b="$smoke_dir/pool_b"
mkdir -p "$pool_a" "$pool_b"
(cd "$pool_a" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke --par-query 4 --par-pool --par-epoch 64 >/dev/null)
(cd "$pool_b" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke --par-query 4 --par-pool --par-epoch 64 >/dev/null)
./target/release/rrq-benchdiff \
  "$pool_a/BENCH_fig14.json" "$pool_b/BENCH_fig14.json" \
  --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    epoch-snapshot pool self-diff clean (exact counters)"

echo "==> load generator smoke (closed loop, same seed twice)"
# The loadgen stream is a pure function of seed and configuration, so
# two same-seed closed-loop runs must agree EXACTLY on every
# deterministic counter (benchdiff default 0% threshold); only latency
# and the sched_* scheduling metrics may differ between runs.
lg_a="$smoke_dir/lg_a"; lg_b="$smoke_dir/lg_b"
mkdir -p "$lg_a" "$lg_b"
(cd "$lg_a" && "$OLDPWD/target/release/rrq-exp" --smoke \
  --loadgen rate=300,dur=0.1,mode=closed,workers=2 >/dev/null)
(cd "$lg_b" && "$OLDPWD/target/release/rrq-exp" --smoke \
  --loadgen rate=300,dur=0.1,mode=closed,workers=2 >/dev/null)
./target/release/rrq-benchdiff \
  "$lg_a/BENCH_loadgen.json" "$lg_b/BENCH_loadgen.json" \
  --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    loadgen self-diff clean (exact counters)"

echo "==> explain smoke (capture, render, zero-tolerance self-diff)"
# Explain documents are a pure function of seed and configuration:
# two same-seed captures must be identical, and `rrq-explain diff` (no
# tolerance knobs by design) must localize nothing. Sequential and
# parallel documents of the same query must agree structurally (header
# + results) — the cross-engine contract of DESIGN.md §9b.
ex_a="$smoke_dir/ex_a"; ex_b="$smoke_dir/ex_b"
mkdir -p "$ex_a" "$ex_b"
(cd "$ex_a" && "$OLDPWD/target/release/rrq-exp" --smoke --par-query 2 --explain >/dev/null)
(cd "$ex_b" && "$OLDPWD/target/release/rrq-exp" --smoke --par-query 2 --explain >/dev/null)
for doc in rtk_gir rkr_gir rtk_par rkr_par; do
  ./target/release/rrq-explain diff \
    "$ex_a/EXPLAIN_$doc.json" "$ex_b/EXPLAIN_$doc.json" >/dev/null
  cmp -s "$ex_a/EXPLAIN_$doc.json" "$ex_b/EXPLAIN_$doc.json"
done
echo "    same-seed captures byte-identical and diff-clean"
./target/release/rrq-explain diff --structural \
  "$ex_a/EXPLAIN_rtk_gir.json" "$ex_a/EXPLAIN_rtk_par.json" >/dev/null
./target/release/rrq-explain diff --structural \
  "$ex_a/EXPLAIN_rkr_gir.json" "$ex_a/EXPLAIN_rkr_par.json" >/dev/null
echo "    sequential vs parallel structurally clean"
./target/release/rrq-explain render "$ex_a/EXPLAIN_rtk_gir.json" | grep -q "funnel"
echo "    render smoke ok"

echo "All checks passed."
