#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, build and the full test suite.
#
# Everything here runs fully offline — the workspace has no external
# dependencies by design (see the workspace Cargo.toml), so no step
# touches the network. Run from anywhere inside the repository.
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/" 2>/dev/null \
  || cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "All checks passed."
