#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, build and the full test suite.
#
# Everything here runs fully offline — the workspace has no external
# dependencies by design (see the workspace Cargo.toml), so no step
# touches the network. Run from anywhere inside the repository.
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/" 2>/dev/null \
  || cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> rrq-benchdiff smoke (tiny dataset, self vs self must be clean)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke >/dev/null)
./target/release/rrq-benchdiff \
  "$smoke_dir/BENCH_fig14.json" "$smoke_dir/BENCH_fig14.json" >/dev/null
echo "    self-diff clean"

echo "All checks passed."
