#!/usr/bin/env bash
# Pre-PR gate: formatting, lints (clippy + rrq-lint), build and the
# full test suite.
#
# rrq-lint is the workspace's own static-analysis pass: it enforces the
# determinism, unsafe-containment and counter-integrity rules clippy
# cannot express (see DESIGN.md §11). scripts/lint_gate.sh runs it
# standalone with JSON output for CI.
#
# Everything here runs fully offline — the workspace has no external
# dependencies by design (see the workspace Cargo.toml), so no step
# touches the network. Run from anywhere inside the repository.
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/" 2>/dev/null \
  || cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rrq-lint (workspace invariants, committed baseline applied)"
cargo build --release -q -p rrq-lint
./target/release/rrq-lint --baseline lint_baseline.txt

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> miri (optional: nightly-only, deepens the alloc-track audit)"
# The counting-allocator tests in crates/obs are the workspace's only
# unsafe code; when a nightly toolchain with Miri is installed, replay
# them under it. Strictly additive — absence is not a failure, since
# the pinned stable toolchain cannot run Miri.
if cargo +nightly miri --version >/dev/null 2>&1; then
  MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo +nightly miri test -p rrq-obs --test noop_alloc -q
  echo "    miri clean on the counting-allocator tests"
else
  echo "    skipped (no nightly Miri toolchain installed)"
fi

echo "==> rrq-benchdiff smoke (tiny dataset, self vs self must be clean)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke >/dev/null)
./target/release/rrq-benchdiff \
  "$smoke_dir/BENCH_fig14.json" "$smoke_dir/BENCH_fig14.json" >/dev/null
echo "    self-diff clean"

echo "==> parallel query engine smoke (--par-query 4)"
# (a) Determinism: two independent same-seed parallel runs must produce
#     bit-identical counters — rrq-benchdiff's default exact counter
#     threshold is the gate. Latency/heap jitter is machine noise, not
#     part of the determinism contract.
par_a="$smoke_dir/par_a"; par_b="$smoke_dir/par_b"
mkdir -p "$par_a" "$par_b"
(cd "$par_a" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke --par-query 4 >/dev/null)
(cd "$par_b" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke --par-query 4 >/dev/null)
./target/release/rrq-benchdiff \
  "$par_a/BENCH_fig14.json" "$par_b/BENCH_fig14.json" \
  --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    deterministic parallel self-diff clean (exact counters)"
# (b) Structure: the parallel document must pair up with the sequential
#     one run for run (same experiments, algorithms, labels). Counters
#     legitimately differ (per-worker Domin buffers), so only the
#     document structure and config are gated here.
./target/release/rrq-benchdiff \
  "$smoke_dir/BENCH_fig14.json" "$par_a/BENCH_fig14.json" \
  --max-counter-pct inf --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    sequential vs parallel document structure clean"

echo "==> worker pool + epoch snapshot smoke (--par-pool --par-epoch 64)"
# Epoch-snapshot mode folds shared bounds at fixed weight offsets, so its
# pruning counters are a pure function of (data, query, shards, epoch):
# two same-seed runs on the persistent pool must diff clean at the
# default EXACT counter threshold — the determinism contract of
# DESIGN.md §5b, gated end to end through the bench exporter.
pool_a="$smoke_dir/pool_a"; pool_b="$smoke_dir/pool_b"
mkdir -p "$pool_a" "$pool_b"
(cd "$pool_a" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke --par-query 4 --par-pool --par-epoch 64 >/dev/null)
(cd "$pool_b" && "$OLDPWD/target/release/rrq-exp" fig14 --smoke --par-query 4 --par-pool --par-epoch 64 >/dev/null)
./target/release/rrq-benchdiff \
  "$pool_a/BENCH_fig14.json" "$pool_b/BENCH_fig14.json" \
  --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    epoch-snapshot pool self-diff clean (exact counters)"

echo "==> load generator smoke (closed loop, same seed twice)"
# The loadgen stream is a pure function of seed and configuration, so
# two same-seed closed-loop runs must agree EXACTLY on every
# deterministic counter (benchdiff default 0% threshold); only latency
# and the sched_* scheduling metrics may differ between runs.
lg_a="$smoke_dir/lg_a"; lg_b="$smoke_dir/lg_b"
mkdir -p "$lg_a" "$lg_b"
(cd "$lg_a" && "$OLDPWD/target/release/rrq-exp" --smoke \
  --loadgen rate=300,dur=0.1,mode=closed,workers=2 >/dev/null)
(cd "$lg_b" && "$OLDPWD/target/release/rrq-exp" --smoke \
  --loadgen rate=300,dur=0.1,mode=closed,workers=2 >/dev/null)
./target/release/rrq-benchdiff \
  "$lg_a/BENCH_loadgen.json" "$lg_b/BENCH_loadgen.json" \
  --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    loadgen self-diff clean (exact counters)"

echo "==> explain smoke (capture, render, zero-tolerance self-diff)"
# Explain documents are a pure function of seed and configuration:
# two same-seed captures must be identical, and `rrq-explain diff` (no
# tolerance knobs by design) must localize nothing. Sequential and
# parallel documents of the same query must agree structurally (header
# + results) — the cross-engine contract of DESIGN.md §9b.
ex_a="$smoke_dir/ex_a"; ex_b="$smoke_dir/ex_b"
mkdir -p "$ex_a" "$ex_b"
(cd "$ex_a" && "$OLDPWD/target/release/rrq-exp" --smoke --par-query 2 --explain >/dev/null)
(cd "$ex_b" && "$OLDPWD/target/release/rrq-exp" --smoke --par-query 2 --explain >/dev/null)
for doc in rtk_gir rkr_gir rtk_par rkr_par; do
  ./target/release/rrq-explain diff \
    "$ex_a/EXPLAIN_$doc.json" "$ex_b/EXPLAIN_$doc.json" >/dev/null
  cmp -s "$ex_a/EXPLAIN_$doc.json" "$ex_b/EXPLAIN_$doc.json"
done
echo "    same-seed captures byte-identical and diff-clean"
./target/release/rrq-explain diff --structural \
  "$ex_a/EXPLAIN_rtk_gir.json" "$ex_a/EXPLAIN_rtk_par.json" >/dev/null
./target/release/rrq-explain diff --structural \
  "$ex_a/EXPLAIN_rkr_gir.json" "$ex_a/EXPLAIN_rkr_par.json" >/dev/null
echo "    sequential vs parallel structurally clean"
./target/release/rrq-explain render "$ex_a/EXPLAIN_rtk_gir.json" | grep -q "funnel"
echo "    render smoke ok"

echo "==> threshold index smoke (artifact lifecycle + short-circuit win)"
# (a) Artifact lifecycle: build a versioned RRQT artifact, re-read it
#     through the full header/checksum validation path, and prove that a
#     stale shape, a flipped payload bit and a truncated file are all
#     rejected with the typed errors the serving layer raises.
th_dir="$smoke_dir/threshold"
mkdir -p "$th_dir"
./target/release/rrq-threshold build "$th_dir/idx.rrqt" 2>/dev/null
./target/release/rrq-threshold check "$th_dir/idx.rrqt" 2>/dev/null
if ./target/release/rrq-threshold check "$th_dir/idx.rrqt" --seed 7 2>"$th_dir/stale.err"; then
  echo "error: stale threshold artifact was accepted" >&2; exit 1
fi
grep -q "rejected as stale" "$th_dir/stale.err"
cp "$th_dir/idx.rrqt" "$th_dir/corrupt.rrqt"
last=$(tail -c1 "$th_dir/corrupt.rrqt" | od -An -tu1 | tr -d ' ')
printf "\\x$(printf '%02x' $(( (last + 1) % 256 )))" \
  | dd of="$th_dir/corrupt.rrqt" bs=1 seek=$(( $(wc -c < "$th_dir/corrupt.rrqt") - 1 )) conv=notrunc 2>/dev/null
if ./target/release/rrq-threshold check "$th_dir/corrupt.rrqt" 2>"$th_dir/corrupt.err"; then
  echo "error: corrupted threshold artifact was accepted" >&2; exit 1
fi
grep -q "checksum" "$th_dir/corrupt.err"
head -c 40 "$th_dir/idx.rrqt" > "$th_dir/trunc.rrqt"
if ./target/release/rrq-threshold check "$th_dir/trunc.rrqt" 2>"$th_dir/trunc.err"; then
  echo "error: truncated threshold artifact was accepted" >&2; exit 1
fi
grep -q "bytes on disk" "$th_dir/trunc.err"
echo "    artifact round-trip ok; stale/corrupt/truncated all rejected"
# (b) Serving: two same-seed indexed fig10 runs must produce
#     bit-identical counters (benchdiff's default exact threshold), and
#     against the plain run the index must cut GIR's RTK refine work by
#     at least 5x while booking every short-circuit in threshold_hits.
th_a="$th_dir/a"; th_b="$th_dir/b"; th_plain="$th_dir/plain"
mkdir -p "$th_a" "$th_b" "$th_plain"
(cd "$th_plain" && "$OLDPWD/target/release/rrq-exp" fig10 --smoke >/dev/null)
(cd "$th_a" && "$OLDPWD/target/release/rrq-exp" fig10 --smoke --threshold-index >/dev/null)
(cd "$th_b" && "$OLDPWD/target/release/rrq-exp" fig10 --smoke --threshold-index >/dev/null)
./target/release/rrq-benchdiff \
  "$th_a/BENCH_fig10.json" "$th_b/BENCH_fig10.json" \
  --max-latency-pct inf --max-mem-pct inf >/dev/null
echo "    indexed self-diff clean (exact counters)"
gir_refined() { # sums the W-scan refine counter over GIR rtk runs
  awk '/"algorithm":/ { alg = $2 } /"query_kind":/ { kind = $2 }
       /"refined":/ { if (alg ~ /"GIR/ && kind ~ /rtk/) sum += $2 + 0 }
       END { print sum + 0 }' "$1"
}
plain_refined=$(gir_refined "$th_plain/BENCH_fig10.json")
indexed_refined=$(gir_refined "$th_a/BENCH_fig10.json")
hits=$(awk '/"threshold_hits":/ { sum += $2 + 0 } END { print sum + 0 }' "$th_a/BENCH_fig10.json")
if [ "$plain_refined" -le 0 ] || [ "$plain_refined" -lt $(( 5 * indexed_refined )) ] || [ "$hits" -le 0 ]; then
  echo "error: threshold index win too small: RTK refined $plain_refined -> $indexed_refined, threshold_hits $hits" >&2
  exit 1
fi
echo "    GIR rtk refined pairs: $plain_refined -> $indexed_refined (>= 5x cut), $hits threshold hits"

echo "==> update trace smoke (mutable engine vs rebuild, same seed twice)"
# The update trace is a pure function of its seed. The runner itself
# hard-fails if the mutable engine (tombstones, append tails,
# incremental threshold repair, epoch publishes, one mid-trace
# compaction fold) ever diverges from an index rebuilt from scratch at
# a checkpoint — so a clean exit IS the mutable-vs-rebuild
# zero-tolerance diff. On top of that, two same-seed runs must agree
# EXACTLY on every deterministic counter, including the update-path
# quartet (tombstones_skipped, appended_scanned,
# threshold_rows_repaired, epoch_published).
up_a="$smoke_dir/up_a"; up_b="$smoke_dir/up_b"
mkdir -p "$up_a" "$up_b"
(cd "$up_a" && "$OLDPWD/target/release/rrq-exp" --smoke --mutate trace=42 >/dev/null)
(cd "$up_b" && "$OLDPWD/target/release/rrq-exp" --smoke --mutate trace=42 >/dev/null)
./target/release/rrq-benchdiff \
  "$up_a/BENCH_update.json" "$up_b/BENCH_update.json" >/dev/null
for counter in tombstones_skipped appended_scanned threshold_rows_repaired epoch_published; do
  grep -q "\"$counter\"" "$up_a/BENCH_update.json" || {
    echo "error: BENCH_update.json is missing counter $counter" >&2; exit 1;
  }
done
echo "    update-trace self-diff clean (exact counters, zero tolerance)"

echo "All checks passed."
