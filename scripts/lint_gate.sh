#!/usr/bin/env bash
# Static-analysis gate: run rrq-lint over the workspace and interpret
# its machine-readable output. Exit codes mirror rrq-benchdiff:
#
#   0  clean — every rule holds (or is suppressed with a reason)
#   1  violations — one or more diagnostics; they are printed below
#   2  infrastructure error — the linter failed to build or run, or its
#      JSON was unparseable (a broken gate must not read as "passed")
#
# Usage:
#   scripts/lint_gate.sh                # gate the workspace
#   scripts/lint_gate.sh --fix-forbid   # first insert missing
#                                       # #![forbid(unsafe_code)] attrs,
#                                       # then gate the result
#
# The committed lint_baseline.txt is applied: findings carried there are
# tolerated (and counted), stale entries fail the gate. A SARIF 2.1.0
# artifact is written to $LINT_SARIF (default: target/lint.sarif) for
# CI code-scanning uploads.
#
# The same check runs inside `cargo test -p rrq-lint` (workspace_clean)
# and as a step of scripts/check.sh; this standalone entry point exists
# for CI pipelines that want the JSON/SARIF artifacts and
# benchdiff-style exit codes. See DESIGN.md §11 for the rule catalogue.
set -uo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/" 2>/dev/null \
  || cd "$(dirname "$0")/.."

echo "==> cargo build --release -p rrq-lint"
if ! cargo build --release -q -p rrq-lint; then
  echo "error: rrq-lint failed to build" >&2
  exit 2
fi

if [[ "${1:-}" == "--fix-forbid" ]]; then
  echo "==> rrq-lint --fix-forbid"
  ./target/release/rrq-lint --fix-forbid || exit 2
  shift
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

baseline="lint_baseline.txt"
if [[ ! -f "$baseline" ]]; then
  echo "error: committed $baseline is missing" >&2
  exit 2
fi

sarif="${LINT_SARIF:-target/lint.sarif}"
mkdir -p "$(dirname "$sarif")"

echo "==> rrq-lint --json --baseline $baseline --sarif $sarif"
./target/release/rrq-lint --json --baseline "$baseline" --sarif "$sarif" >"$out"
status=$?
if [[ $status -ne 0 && $status -ne 1 ]]; then
  echo "error: rrq-lint exited with status $status" >&2
  exit 2
fi

# The JSON shape is fixed and flat ({"files_scanned":N,"error_count":N,
# "baseline_suppressed":N,"diagnostics":[...]}), so the counts can be
# extracted without a JSON tool — keeping the gate as dependency-free
# as the linter itself.
errors=$(sed -n 's/.*"error_count": *\([0-9]\{1,\}\).*/\1/p' "$out")
files=$(sed -n 's/.*"files_scanned": *\([0-9]\{1,\}\).*/\1/p' "$out")
baselined=$(sed -n 's/.*"baseline_suppressed": *\([0-9]\{1,\}\).*/\1/p' "$out")
if [[ -z "$errors" || -z "$files" || -z "$baselined" ]]; then
  echo "error: could not parse rrq-lint JSON output:" >&2
  cat "$out" >&2
  exit 2
fi

if [[ ! -s "$sarif" ]]; then
  echo "error: SARIF artifact $sarif was not written" >&2
  exit 2
fi

if [[ "$errors" -ne 0 ]]; then
  echo "Lint gate FAILED — $errors violation(s) across $files files (baseline drift is a failure too):" >&2
  # Human-readable rerun for the log; the JSON artifact stays in $out
  # only for this run, CI should capture stdout of the --json call and
  # upload the SARIF artifact.
  ./target/release/rrq-lint --baseline "$baseline" >&2 || true
  exit 1
fi

echo "Lint gate passed ($files files clean, $baselined baselined; SARIF: $sarif)."
exit 0
