#!/usr/bin/env bash
# Static-analysis gate: run rrq-lint over the workspace and interpret
# its machine-readable output. Exit codes mirror rrq-benchdiff:
#
#   0  clean — every rule holds (or is suppressed with a reason)
#   1  violations — one or more diagnostics; they are printed below
#   2  infrastructure error — the linter failed to build or run, or its
#      JSON was unparseable (a broken gate must not read as "passed")
#
# Usage:
#   scripts/lint_gate.sh                # gate the workspace
#   scripts/lint_gate.sh --fix-forbid   # first insert missing
#                                       # #![forbid(unsafe_code)] attrs,
#                                       # then gate the result
#
# The same check runs inside `cargo test -p rrq-lint` (workspace_clean)
# and as a step of scripts/check.sh; this standalone entry point exists
# for CI pipelines that want the JSON artifact and benchdiff-style exit
# codes. See DESIGN.md §11 for the rule catalogue.
set -uo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/" 2>/dev/null \
  || cd "$(dirname "$0")/.."

echo "==> cargo build --release -p rrq-lint"
if ! cargo build --release -q -p rrq-lint; then
  echo "error: rrq-lint failed to build" >&2
  exit 2
fi

if [[ "${1:-}" == "--fix-forbid" ]]; then
  echo "==> rrq-lint --fix-forbid"
  ./target/release/rrq-lint --fix-forbid || exit 2
  shift
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

echo "==> rrq-lint --json"
./target/release/rrq-lint --json >"$out"
status=$?
if [[ $status -ne 0 && $status -ne 1 ]]; then
  echo "error: rrq-lint exited with status $status" >&2
  exit 2
fi

# The JSON shape is fixed and flat ({"files_scanned":N,"error_count":N,
# "diagnostics":[...]}), so the counts can be extracted without a JSON
# tool — keeping the gate as dependency-free as the linter itself.
errors=$(sed -n 's/.*"error_count": *\([0-9]\{1,\}\).*/\1/p' "$out")
files=$(sed -n 's/.*"files_scanned": *\([0-9]\{1,\}\).*/\1/p' "$out")
if [[ -z "$errors" || -z "$files" ]]; then
  echo "error: could not parse rrq-lint JSON output:" >&2
  cat "$out" >&2
  exit 2
fi

if [[ "$errors" -ne 0 ]]; then
  echo "Lint gate FAILED — $errors violation(s) across $files files:" >&2
  # Human-readable rerun for the log; the JSON artifact stays in $out
  # only for this run, CI should capture stdout of the --json call.
  ./target/release/rrq-lint >&2 || true
  exit 1
fi

echo "Lint gate passed ($files files clean)."
exit 0
