//! Quickstart: the paper's Figure 1 cell-phone example, end to end.
//!
//! Five phones scored on "smart" and "rating" (smaller is better), three
//! users with different priorities. We reproduce the paper's RT-2 table
//! and the R1-R column with both the naive oracle and GIR.
//!
//! Run with: `cargo run --example quickstart`

use reverse_rank::prelude::*;

fn main() -> Result<(), reverse_rank::RrqError> {
    // Figure 1(b): the cell-phone database.
    let phones = PointSet::from_flat(
        2,
        1.0,
        &[
            0.6, 0.7, // p1
            0.2, 0.3, // p2
            0.1, 0.6, // p3
            0.7, 0.5, // p4
            0.8, 0.2, // p5
        ],
    )?;
    // Figure 1(a): user preferences.
    let users = WeightSet::from_flat(
        2,
        &[
            0.8, 0.2, // Tom
            0.3, 0.7, // Jerry
            0.9, 0.1, // Spike
        ],
    )?;
    let names = ["Tom", "Jerry", "Spike"];

    let gir = Gir::with_defaults(&phones, &users);
    let naive = Naive::new(&phones, &users);
    let mut stats = QueryStats::default();

    println!("RT-2 (reverse top-2): which users rank each phone in their top 2?");
    for i in 0..phones.len() {
        let q = phones.point(PointId(i)).to_vec();
        let fans = gir.reverse_top_k(&q, 2, &mut stats);
        // GIR always agrees with the definition-level oracle.
        assert_eq!(fans, naive.reverse_top_k(&q, 2, &mut stats));
        let who: Vec<&str> = fans.weights().iter().map(|w| names[w.0]).collect();
        println!(
            "  p{} -> {}",
            i + 1,
            if who.is_empty() {
                "(nobody)".to_string()
            } else {
                who.join(", ")
            }
        );
    }

    println!();
    println!("R1-R (reverse 1-ranks): the user who ranks each phone best");
    println!("(unlike RT-k this is never empty — even unpopular p1/p4 get a match):");
    for i in 0..phones.len() {
        let q = phones.point(PointId(i)).to_vec();
        let best = gir.reverse_k_ranks(&q, 1, &mut stats);
        let entry = best.entries()[0];
        println!(
            "  p{} -> {} (rank {})",
            i + 1,
            names[entry.weight.0],
            entry.rank + 1 // print 1-based like the paper
        );
    }

    println!();
    println!(
        "instrumentation: {} multiplications, {} grid-filtered pairs",
        stats.multiplications,
        stats.filtered_case1 + stats.filtered_case2
    );
    Ok(())
}
