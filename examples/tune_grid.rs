//! Tuning the Grid-index with the paper's performance model (§5.3).
//!
//! Uses Theorem 1 to choose the number of partitions `n` for a target
//! filter rate, shows the memory cost of each candidate grid, and
//! verifies the prediction empirically — including the adaptive
//! (quantile) grid extension on skewed data.
//!
//! Run with: `cargo run --release --example tune_grid`

use reverse_rank::core::model;
use reverse_rank::core::AdaptiveGrid;
use reverse_rank::data::synthetic;
use reverse_rank::prelude::*;

fn measure_effective_filter<R: RkrQuery>(alg: &R, p: &PointSet, w: &WeightSet, k: usize) -> f64 {
    let mut stats = QueryStats::default();
    for qid in [100usize, 2000, 4000] {
        let q = p.point(PointId(qid)).to_vec();
        alg.reverse_k_ranks(&q, k, &mut stats);
    }
    1.0 - stats.refined as f64 / (3.0 * (p.len() * w.len()) as f64)
}

fn main() -> Result<(), reverse_rank::RrqError> {
    let d = 20;
    println!("choosing n for d = {d} with Theorem 1 (target: filter >= 99%):");
    let analytic = model::required_partitions(d, 0.01);
    let n = model::next_power_of_two(analytic);
    println!("  analytic minimum n = {analytic}, rounded to n = {n} (log2 cells per dim)");
    for candidate in [4usize, 8, 16, 32, 64, 128] {
        let f = model::worst_case_filter_rate(d, candidate);
        let mem = (candidate + 1) * (candidate + 1) * 8;
        println!(
            "  n = {candidate:>3}: model worst-case filter {:>7.3}%, table memory {mem} B",
            f * 100.0
        );
    }

    // Verify empirically on uniform data.
    let p = synthetic::uniform_points(d, 5_000, 10_000.0, 31)?;
    let w = synthetic::uniform_weights(d, 2_000, 32)?;
    let gir = Gir::new(
        &p,
        &w,
        GirConfig {
            partitions: n,
            ..Default::default()
        },
    );
    let measured = measure_effective_filter(&gir, &p, &w, 100);
    println!();
    println!(
        "measured effective filter rate at n = {n} on UN data: {:.3}% (index memory {} KiB)",
        measured * 100.0,
        gir.index_memory_bytes() / 1024
    );

    // Skewed data: the §7 adaptive-grid extension.
    let p_skew = synthetic::exponential_points(6, 5_000, 10_000.0, 2.0, 33)?;
    let w_skew = synthetic::uniform_weights(6, 2_000, 34)?;
    let coarse = GirConfig {
        partitions: 8,
        ..Default::default()
    };
    let uniform = Gir::new(&p_skew, &w_skew, coarse);
    let adaptive = Gir::with_grid(
        &p_skew,
        &w_skew,
        AdaptiveGrid::from_data(8, &p_skew, &w_skew),
        coarse,
    );
    println!();
    println!("skewed (exponential) data with a deliberately coarse n = 8 grid:");
    println!(
        "  uniform grid : effective filter {:.3}%",
        measure_effective_filter(&uniform, &p_skew, &w_skew, 100) * 100.0
    );
    println!(
        "  adaptive grid: effective filter {:.3}% (quantile boundaries)",
        measure_effective_filter(&adaptive, &p_skew, &w_skew, 100) * 100.0
    );
    Ok(())
}
