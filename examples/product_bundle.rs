//! Product bundling with aggregate reverse rank queries — the authors'
//! DEXA '16 follow-up implemented as an extension (`rrq-core::arr`).
//!
//! A retailer assembles a three-product bundle and asks: which customers
//! rank the *bundle* best? Sum-aggregation rewards overall visibility;
//! max-aggregation requires every member to rank well (a chain is only
//! as strong as its weakest product).
//!
//! Run with: `cargo run --release --example product_bundle`

use reverse_rank::core::arr::aggregate_reverse_k_ranks_naive;
use reverse_rank::data::synthetic;
use reverse_rank::prelude::*;
use reverse_rank::Aggregate;

fn main() -> Result<(), reverse_rank::RrqError> {
    let catalogue = synthetic::uniform_points(5, 8_000, 10_000.0, 41)?;
    let customers = synthetic::uniform_weights(5, 15_000, 42)?;
    println!(
        "catalogue: {} products, customers: {}",
        catalogue.len(),
        customers.len()
    );

    // The bundle: three catalogue products with complementary strengths.
    let bundle: Vec<Vec<f64>> = [101usize, 2_048, 6_500]
        .iter()
        .map(|&i| catalogue.point(PointId(i)).to_vec())
        .collect();
    println!("bundle of {} products", bundle.len());

    let gir = Gir::with_defaults(&catalogue, &customers);

    for agg in [Aggregate::Sum, Aggregate::Max] {
        let mut stats = QueryStats::default();
        let result = gir.aggregate_reverse_k_ranks(&bundle, 5, agg, &mut stats);
        println!();
        println!("top-5 customers under {agg:?} aggregation:");
        for e in result.entries() {
            println!("  customer #{:<6} aggregate rank {:>6}", e.weight.0, e.rank);
        }
        println!(
            "  ({} multiplications — vs {} for the naive oracle)",
            stats.multiplications,
            (customers.len() * bundle.len() * (catalogue.len() + 1) * catalogue.dim())
        );
    }

    // Sanity: GIR agrees with the definition-level oracle on a sample.
    let mut s1 = QueryStats::default();
    let mut s2 = QueryStats::default();
    assert_eq!(
        gir.aggregate_reverse_k_ranks(&bundle, 3, Aggregate::Sum, &mut s1),
        aggregate_reverse_k_ranks_naive(
            &catalogue,
            &customers,
            &bundle,
            3,
            Aggregate::Sum,
            &mut s2
        )
    );
    println!();
    println!("verified against the naive oracle");
    Ok(())
}
