//! Restaurant targeting on the simulated DIANPING workload.
//!
//! The paper's real-world application: a business-reviewing site scores
//! restaurants on rate, flavor, cost, service, environment and waiting
//! time; each user's averaged review emphasis acts as a preference
//! vector. Reverse rank queries find the users a given restaurant should
//! advertise to.
//!
//! Run with: `cargo run --release --example restaurant_targeting`

use reverse_rank::data::real_sim;
use reverse_rank::prelude::*;

const CRITERIA: [&str; 6] = [
    "rate",
    "flavor",
    "cost",
    "service",
    "environment",
    "waiting",
];

fn main() -> Result<(), reverse_rank::RrqError> {
    // A few percent of the paper's cardinalities keeps this example fast.
    let restaurants = real_sim::dianping_restaurants(8_000, 11)?;
    let users = real_sim::dianping_users(20_000, 12)?;
    println!(
        "DIANPING (simulated): {} restaurants, {} users",
        restaurants.len(),
        users.len()
    );

    let gir = Gir::with_defaults(&restaurants, &users);
    let sim = Sim::new(&restaurants, &users);

    // Pick a median restaurant as "ours".
    let q = restaurants.point(PointId(4_321)).to_vec();
    println!();
    println!("our restaurant (0 = perfect 5 stars, 5 = terrible):");
    for (name, v) in CRITERIA.iter().zip(&q) {
        println!("  {name:<12} {:.2} (avg {:.2} stars)", v, 5.0 - v);
    }

    let mut gir_stats = QueryStats::default();
    let targets = gir.reverse_k_ranks(&q, 10, &mut gir_stats);
    println!();
    println!("top-10 users to target (reverse 10-ranks):");
    for e in targets.entries() {
        let w = users.weight(e.weight);
        let (fav, share) = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, v)| (CRITERIA[i], *v))
            .unwrap();
        println!(
            "  user #{:<6} ranks us {:<5} (weights {fav} at {:.0}%)",
            e.weight.0,
            e.rank,
            share * 100.0
        );
    }

    // Cross-check against the instrumented simple scan and report the
    // paper's headline saving.
    let mut sim_stats = QueryStats::default();
    let check = sim.reverse_k_ranks(&q, 10, &mut sim_stats);
    assert_eq!(targets, check, "GIR must agree with the simple scan");
    println!();
    println!(
        "pairwise multiplications: GIR {} vs simple scan {} ({:.1}x saved)",
        gir_stats.multiplications,
        sim_stats.multiplications,
        sim_stats.multiplications as f64 / gir_stats.multiplications.max(1) as f64
    );
    Ok(())
}
