//! Market analysis: which customers would a new product reach?
//!
//! The scenario from the paper's introduction — a manufacturer wants to
//! estimate the visibility of a product among a large base of customers
//! with known preferences. We generate a 6-attribute product catalogue
//! (price, processor, storage, size, battery, camera — all normalised so
//! smaller is better) and 20 000 customer preference vectors, then place
//! three candidate products and compare their reach with reverse top-k
//! and their best-matched customers with reverse k-ranks.
//!
//! Run with: `cargo run --release --example market_analysis`

use reverse_rank::data::{synthetic, PAPER_VALUE_RANGE};
use reverse_rank::prelude::*;

const ATTRS: [&str; 6] = ["price", "cpu", "storage", "size", "battery", "camera"];

fn main() -> Result<(), reverse_rank::RrqError> {
    let catalogue = synthetic::uniform_points(6, 10_000, PAPER_VALUE_RANGE, 7)?;
    let customers = synthetic::uniform_weights(6, 20_000, 8)?;
    println!(
        "catalogue: {} products x {} attributes; customers: {}",
        catalogue.len(),
        ATTRS.len(),
        customers.len()
    );

    let gir = Gir::with_defaults(&catalogue, &customers);

    // Three candidate products to position (attribute units: lower wins).
    let candidates: [(&str, Vec<f64>); 3] = [
        (
            "budget flagship",
            vec![800.0, 2000.0, 3000.0, 4000.0, 2500.0, 3500.0],
        ),
        ("balanced mid-ranger", vec![4000.0; 6]),
        (
            "overpriced laggard",
            vec![9000.0, 8000.0, 8500.0, 9000.0, 8800.0, 9200.0],
        ),
    ];

    for (name, q) in &candidates {
        let mut stats = QueryStats::default();
        // Reach: customers who would see this product in their top-100.
        let reach = gir.reverse_top_k(q, 100, &mut stats);
        // Outreach list: the 5 best-matched customers, with ranks.
        let best = gir.reverse_k_ranks(q, 5, &mut stats);
        println!();
        println!("product: {name}");
        println!(
            "  reach: {} of {} customers rank it top-100 ({:.2}%)",
            reach.len(),
            customers.len(),
            100.0 * reach.len() as f64 / customers.len() as f64
        );
        println!("  best-matched customers (reverse 5-ranks):");
        for e in best.entries() {
            let w = customers.weight(e.weight);
            let (top_attr, top_val) = w
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, v)| (ATTRS[i], *v))
                .unwrap();
            println!(
                "    customer #{:<6} rank {:<6} (cares most about {top_attr}: {top_val:.2})",
                e.weight.0, e.rank
            );
        }
        println!(
            "  cost: {} multiplications for {} x {} pairs ({:.2}% of naive)",
            stats.multiplications,
            catalogue.len(),
            customers.len(),
            100.0 * stats.multiplications as f64
                / (2.0 * (catalogue.len() * customers.len() * 6) as f64)
        );
    }

    // The paper's point: even an unpopular product gets useful RKR output
    // where RTK returns nothing.
    let (_, laggard) = &candidates[2];
    let mut stats = QueryStats::default();
    let reach = gir.reverse_top_k(laggard, 10, &mut stats);
    let best = gir.reverse_k_ranks(laggard, 3, &mut stats);
    println!();
    println!(
        "laggard with k = 10: RTK reach = {} customers, but RKR still names {} outreach targets",
        reach.len(),
        best.len()
    );
    Ok(())
}
