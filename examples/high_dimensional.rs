//! High-dimensional showdown: GIR vs the tree-based baselines vs the
//! simple scan at `d = 20` — the regime the paper was written for.
//!
//! Demonstrates the "curse of dimensionality" on the R-tree side (every
//! MBR overlaps every query region, nothing prunes) and the stability of
//! the scan-based Grid-index approach.
//!
//! Run with: `cargo run --release --example high_dimensional`

use reverse_rank::data::synthetic;
use reverse_rank::prelude::*;
use reverse_rank::rtree::{stats as rstats, RTree, RTreeConfig};
use reverse_rank::{Bbr, BbrConfig};
use std::time::Instant;

fn main() -> Result<(), reverse_rank::RrqError> {
    let d = 20;
    let points = synthetic::uniform_points(d, 20_000, 10_000.0, 21)?;
    let weights = synthetic::uniform_weights(d, 2_000, 22)?;
    println!(
        "workload: d = {d}, |P| = {}, |W| = {}",
        points.len(),
        weights.len()
    );

    // First, the structural symptom (paper Table 3): a 1%-volume query
    // overlaps essentially every leaf MBR.
    let tree = RTree::bulk_load(&points, RTreeConfig::with_max_entries(100));
    let probe = rstats::fractional_volume_query(d, 10_000.0, 0.01, &vec![0.5; d]);
    let overlap = rstats::overlap_fraction(&tree, &probe);
    let leaf = rstats::leaf_mbr_stats(&tree);
    println!();
    println!(
        "R-tree pathology at d = {d}: {} leaf MBRs, a 1%-volume query overlaps {:.1}% of them",
        leaf.count,
        overlap * 100.0
    );

    // Then the consequence: query times.
    let gir = Gir::with_defaults(&points, &weights);
    let sim = Sim::new(&points, &weights);
    let bbr = Bbr::new(&points, &weights, BbrConfig::default());
    let q = points.point(PointId(777)).to_vec();
    let k = 100;

    println!();
    println!("reverse top-{k} of one query point:");
    let mut reference = None;
    for (name, run) in [
        ("GIR", &gir as &dyn RtkQuery),
        ("SIM", &sim as &dyn RtkQuery),
        ("BBR", &bbr as &dyn RtkQuery),
    ] {
        let mut stats = QueryStats::default();
        let start = Instant::now();
        let result = run.reverse_top_k(&q, k, &mut stats);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        match &reference {
            None => reference = Some(result.clone()),
            Some(r) => assert_eq!(&result, r, "{name} disagrees"),
        }
        println!(
            "  {name:<4} {ms:>8.2} ms   {:>12} multiplications   {:>4} matching users",
            stats.multiplications,
            result.len()
        );
    }
    println!();
    println!("expected shape: GIR < SIM << BBR at this dimensionality");
    Ok(())
}
